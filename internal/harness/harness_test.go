package harness

import (
	"strings"
	"testing"

	"dedupsim/internal/gen"
	"dedupsim/internal/partition"
	"dedupsim/internal/perfmodel"
	"dedupsim/internal/stimulus"
)

func TestCompileVariantAll(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.Rocket, 2, 0.1))
	for _, v := range CompiledVariants {
		cv, err := CompileVariant(c, v, partition.Options{})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if cv.Program == nil || cv.Schedule == nil {
			t.Fatalf("%s: incomplete Compiled", v)
		}
		wantActivity := v == ESSENT || v == PO || v == NL || v == Dedup
		if cv.Activity != wantActivity {
			t.Fatalf("%s: activity = %v", v, cv.Activity)
		}
	}
	if _, err := CompileVariant(c, Commercial, partition.Options{}); err == nil {
		t.Fatal("Commercial must not compile to a program")
	}
}

func TestVariantCodeSizeOrdering(t *testing.T) {
	// On a replicated design: Dedup code < ESSENT code; PO == ESSENT-ish
	// (same style, different partitions); NL == Dedup (same programs, only
	// scheduling differs).
	c := gen.MustBuild(gen.Config(gen.SmallBoom, 4, 0.1))
	size := map[Variant]int{}
	for _, v := range []Variant{ESSENT, PO, NL, Dedup} {
		cv, err := CompileVariant(c, v, partition.Options{})
		if err != nil {
			t.Fatal(err)
		}
		size[v] = cv.Program.UniqueCodeBytes
	}
	if size[Dedup] >= size[ESSENT] {
		t.Fatalf("dedup code %d >= essent %d", size[Dedup], size[ESSENT])
	}
	if size[NL] != size[Dedup] {
		t.Fatalf("NL (%d) and Dedup (%d) should compile identical programs", size[NL], size[Dedup])
	}
	if size[PO] <= size[Dedup] {
		t.Fatalf("PO (%d) should not shrink like Dedup (%d)", size[PO], size[Dedup])
	}
}

func TestMeasureCommercialAndCompiled(t *testing.T) {
	cfg := QuickConfig()
	c := gen.MustBuild(gen.Config(gen.Rocket, 2, cfg.Scale))
	m := cfg.ServerMachine()
	for _, v := range []Variant{Commercial, ESSENT, Dedup} {
		meas, err := Measure(c, v, MeasureOptions{
			Machine: m, Workload: stimulus.VVAddA(), Cycles: 60,
			Sweep:     true,
			SweepWays: []int{1, m.LLCWays},
		})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if meas.Counters.SimHz <= 0 {
			t.Fatalf("%s: zero speed", v)
		}
		if len(meas.Curve.SimHz) != len(perfmodel.CapacitySweep(m)) {
			t.Fatalf("%s: curve not swept: %+v", v, meas.Curve)
		}
		for i := 1; i < len(meas.Curve.SimHz); i++ {
			if meas.Curve.SimHz[i-1] > meas.Curve.SimHz[i]*1.05 {
				t.Fatalf("%s: less cache faster: %v", v, meas.Curve.SimHz)
			}
		}
		if len(meas.WayCounters) != 2 {
			t.Fatalf("%s: way counters missing", v)
		}
	}
}

// TestAllExperimentsQuick runs every table and figure at the quick
// configuration and sanity-checks the rendered reports.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.Cycles = 60
	cases := []struct {
		name string
		run  func() (*Report, error)
		want []string
	}{
		{"Table2", cfg.Table2, []string{"Rocket-1C", "Ideal"}},
		{"Table3", cfg.Table3, []string{"Relative Throughput", "Avg. Time"}},
		{"Table4", cfg.Table4, []string{"IPC", "L1I MPKI", "Dedup"}},
		{"Fig1", cfg.Fig1, []string{"Commercial", "Verilator", "K=48"}},
		{"Fig2", cfg.Fig2, []string{"LLC ways", "ESSENT"}},
		{"Fig8", cfg.Fig8, []string{"Rocket-1C", "Dedup"}},
		{"Fig9", cfg.Fig9, []string{"Max Dedup/ESSENT", "K=8"}},
		{"Fig10", cfg.Fig10, []string{"Rocket_4C"}},
		{"Fig11", cfg.Fig11, []string{"partition one instance", "Fraction"}},
		{"Fig12", cfg.Fig12, []string{"Max Dedup/ESSENT throughput: A", "B"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Title == "" || rep.Body == "" {
				t.Fatal("empty report")
			}
			for _, want := range tc.want {
				if !strings.Contains(rep.String(), want) {
					t.Fatalf("report missing %q:\n%s", want, rep.String())
				}
			}
		})
	}
}

func TestAblations(t *testing.T) {
	cfg := QuickConfig()
	cfg.Cycles = 50
	reps, err := cfg.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("ablations = %d, want 4", len(reps))
	}
	// The boundary-dissolution study must show the Figure 4 hazard: naive
	// stamping cyclic on at least one design, and zero cycle-repair
	// rounds for the real flow.
	bd := reps[0].String()
	if !strings.Contains(bd, "YES") {
		t.Fatalf("naive stamping never cyclic:\n%s", bd)
	}
	// Locality study must show reuse distance collapsing to ~1.
	loc := reps[2].String()
	if !strings.Contains(loc, "1.0") {
		t.Fatalf("locality reuse distance missing:\n%s", loc)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.cacheScale() != 20 {
		t.Fatalf("cache scale = %d, want 20 at scale 1.0", cfg.cacheScale())
	}
	cfg.Scale = 0.5
	if cfg.cacheScale() != 40 {
		t.Fatalf("cache scale = %d, want 40 at scale 0.5", cfg.cacheScale())
	}
	cfg.CacheScale = 7
	if cfg.cacheScale() != 7 {
		t.Fatal("explicit CacheScale ignored")
	}
	if got := clampCores(QuickConfig(), 6); got != 4 {
		t.Fatalf("clampCores(quick, 6) = %d, want 4", got)
	}
	if got := clampCores(DefaultConfig(), 6); got != 6 {
		t.Fatalf("clampCores(default, 6) = %d, want 6", got)
	}
	if paperLargeFamily(DefaultConfig()) != gen.LargeBoom {
		t.Fatal("paperLargeFamily should pick LargeBoom")
	}
	if paperLargeFamily(QuickConfig()) != gen.SmallBoom {
		t.Fatal("paperLargeFamily fallback wrong")
	}
}
