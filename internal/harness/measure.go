package harness

import (
	"fmt"

	"dedupsim/internal/circuit"
	"dedupsim/internal/partition"
	"dedupsim/internal/perfmodel"
	"dedupsim/internal/sim"
	"dedupsim/internal/stimulus"
)

// Measurement is one (design, variant, workload) data point: modeled
// hardware counters plus, optionally, the LLC-capacity response curve the
// batch model consumes and per-way counters for RDT-style experiments.
type Measurement struct {
	Variant  Variant
	Counters perfmodel.Counters
	// Curve is the capacity-response curve (set when Options.Sweep).
	Curve perfmodel.Curve
	// WayCounters holds one Counters per entry of Options.SweepWays.
	WayCounters []perfmodel.Counters
	// Compiled is non-nil for compiled variants (code size inspection).
	Compiled *Compiled
}

// MeasureOptions control a measurement run.
type MeasureOptions struct {
	// Machine is the modeled host (already cache-scaled).
	Machine perfmodel.Machine
	// Workload drives the testbench.
	Workload stimulus.Workload
	// Cycles overrides the workload's run length when > 0.
	Cycles int
	// LLCWays allocates a way subset for the headline counters
	// (0 = all ways).
	LLCWays int
	// Sweep measures the LLC capacity-response curve (for batch models).
	Sweep bool
	// SweepWays, when non-empty, measures counters at those way
	// allocations (RDT-style experiments like Fig. 2).
	SweepWays []int
}

func (o MeasureOptions) cycles() int {
	if o.Cycles > 0 {
		return o.Cycles
	}
	return o.Workload.Cycles
}

// Measure runs one variant on one design under the host model. For
// Commercial it uses the event-driven model on the reference simulator's
// activity trace; for everything else it compiles, records the activation
// trace, and replays it through the cache hierarchy.
func Measure(c *circuit.Circuit, v Variant, opt MeasureOptions) (*Measurement, error) {
	m := opt.Machine
	cycles := opt.cycles()

	if v == Commercial {
		drive := opt.Workload.NewDrive()
		etr, err := perfmodel.RecordEvents(c, cycles, func(r *sim.Ref, cyc int) { drive(r, cyc) })
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", v, err)
		}
		meas := &Measurement{
			Variant:  v,
			Counters: perfmodel.RunEventDriven(etr, m, opt.LLCWays),
		}
		if opt.Sweep {
			meas.Curve = perfmodel.MeasureCurve(m, func(capBytes int) perfmodel.Counters {
				return perfmodel.RunEventDrivenCap(etr, m, capBytes)
			})
		}
		for _, w := range opt.SweepWays {
			meas.WayCounters = append(meas.WayCounters, perfmodel.RunEventDriven(etr, m, w))
		}
		return meas, nil
	}

	cv, err := CompileVariant(c, v, partition.Options{})
	if err != nil {
		return nil, err
	}
	drive := opt.Workload.NewDrive()
	tr := perfmodel.Record(cv.Program, cv.Activity, cycles, func(e *sim.Engine, cyc int) { drive(e, cyc) })
	meas := &Measurement{
		Variant:  v,
		Counters: perfmodel.RunSingle(tr, m, opt.LLCWays),
		Compiled: cv,
	}
	if opt.Sweep {
		meas.Curve = perfmodel.MeasureCurve(m, func(capBytes int) perfmodel.Counters {
			return perfmodel.RunSingleCap(tr, m, capBytes)
		})
	}
	for _, w := range opt.SweepWays {
		meas.WayCounters = append(meas.WayCounters, perfmodel.RunSingle(tr, m, w))
	}
	return meas, nil
}

// DefaultSweep lists the way counts used for capacity curves: enough
// points to interpolate, few enough to keep replay fast.
func DefaultSweep(m perfmodel.Machine) []int {
	ws := []int{1, 2, 3, 4, 6, 8, m.LLCWays}
	var out []int
	seen := map[int]bool{}
	for _, w := range ws {
		if w >= 1 && w <= m.LLCWays && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
