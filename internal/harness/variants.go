// Package harness assembles the paper's simulator variants from the
// library's building blocks and drives the experiments of the evaluation
// section. The variants (paper Section 6.1):
//
//	Commercial        — event-driven interpreter (modeled on the Ref
//	                    simulator's activity statistics)
//	Verilator         — full-cycle, no activity skipping, fine-grained
//	                    statement dedup only
//	Verilator-NoDedup — Verilator with statement dedup disabled
//	ESSENT            — full-cycle, activity-aware, baseline partitioning
//	PO                — ESSENT with the dedup flow's partitioning but no
//	                    code reuse
//	NL                — code reuse without locality-aware scheduling
//	Dedup             — the full system: code reuse + locality scheduling
package harness

import (
	"fmt"

	"dedupsim/internal/circuit"
	"dedupsim/internal/codegen"
	"dedupsim/internal/dedup"
	"dedupsim/internal/partition"
	"dedupsim/internal/sched"
)

// Variant names one simulator configuration.
type Variant string

// The simulator variants of the paper's evaluation.
const (
	Commercial       Variant = "Commercial"
	Verilator        Variant = "Verilator"
	VerilatorNoDedup Variant = "Verilator-NoDedup"
	ESSENT           Variant = "ESSENT"
	PO               Variant = "PO"
	NL               Variant = "NL"
	Dedup            Variant = "Dedup"
)

// CompiledVariants lists every variant that lowers to a compiled Program
// (all but Commercial, which is event-driven).
var CompiledVariants = []Variant{Verilator, VerilatorNoDedup, ESSENT, PO, NL, Dedup}

// AllVariants lists every variant in the paper's presentation order.
var AllVariants = append([]Variant{Commercial}, CompiledVariants...)

// Compiled bundles everything needed to run one variant on one design.
type Compiled struct {
	Variant Variant
	Program *codegen.Program
	// Activity reports whether the engine should skip clean partitions
	// (true for the ESSENT family, false for the Verilator family).
	Activity bool
	// Dedup carries the dedup statistics/partitioning used (nil for the
	// Verilator family, which uses the baseline partitioner directly).
	Dedup *dedup.Result
	// Schedule is the partition evaluation order.
	Schedule *sched.Schedule
}

// CompileVariant lowers the circuit for the given variant. popt tunes the
// underlying acyclic partitioner identically across variants so
// comparisons isolate the dedup mechanisms.
func CompileVariant(c *circuit.Circuit, v Variant, popt partition.Options) (*Compiled, error) {
	g := c.SchedGraph()
	switch v {
	case ESSENT, Verilator, VerilatorNoDedup:
		res, err := partition.Partition(g, popt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v, err)
		}
		dr := dedup.BaselineResult(res)
		s, err := sched.Baseline(dr.Part.Quotient(g))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v, err)
		}
		prog, err := codegen.Compile(c, dr, s, codegen.Options{
			FineGrainDedup: v == Verilator,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v, err)
		}
		return &Compiled{Variant: v, Program: prog, Activity: v == ESSENT, Dedup: dr, Schedule: s}, nil

	case PO, NL, Dedup:
		dr, err := dedup.Deduplicate(c, g, dedup.Options{Partition: popt})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v, err)
		}
		if v == PO {
			dr = dr.WithoutSharing()
		}
		q := dr.Part.Quotient(g)
		var s *sched.Schedule
		if v == Dedup {
			s, err = sched.LocalityAware(q, dr.Class)
		} else {
			s, err = sched.Baseline(q)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v, err)
		}
		prog, err := codegen.Compile(c, dr, s, codegen.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v, err)
		}
		return &Compiled{Variant: v, Program: prog, Activity: true, Dedup: dr, Schedule: s}, nil

	default:
		return nil, fmt.Errorf("harness: variant %q does not compile to a program", v)
	}
}
