package harness

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"dedupsim/internal/circuit"
	"dedupsim/internal/dedup"
	"dedupsim/internal/gen"
	"dedupsim/internal/partition"
	"dedupsim/internal/perfmodel"
	"dedupsim/internal/stimulus"
)

// Config parameterizes an experiment run. The zero value is NOT usable;
// call DefaultConfig.
type Config struct {
	// Scale is the design generator scale in (0, 1]; 1.0 reproduces the
	// calibrated evaluation designs (~1/20 of the paper's node counts).
	Scale float64
	// CacheScale shrinks the modeled host caches to keep the design:cache
	// ratio aligned with the paper; 0 derives it from Scale.
	CacheScale int
	// Cycles bounds simulated cycles per measurement (0 = workload
	// default).
	Cycles int
	// Parallel is the K sweep for batch experiments.
	Parallel []int
	// Families/CoreCounts filter the design grid.
	Families   []gen.Family
	CoreCounts []int
}

// DefaultConfig returns the full-evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Scale:      1.0,
		Cycles:     300,
		Parallel:   []int{1, 8, 16, 24, 32, 40, 48},
		Families:   gen.Families,
		CoreCounts: []int{1, 2, 4, 6, 8},
	}
}

// QuickConfig returns a reduced configuration for tests and benchmarks.
func QuickConfig() Config {
	return Config{
		Scale:      0.15,
		Cycles:     120,
		Parallel:   []int{1, 8, 24, 48},
		Families:   []gen.Family{gen.Rocket, gen.SmallBoom},
		CoreCounts: []int{1, 2, 4},
	}
}

func (cfg Config) cacheScale() int {
	if cfg.CacheScale > 0 {
		return cfg.CacheScale
	}
	s := int(math.Round(20 / cfg.Scale))
	if s < 1 {
		s = 1
	}
	return s
}

// ServerMachine returns the scaled Server platform for this config.
func (cfg Config) ServerMachine() perfmodel.Machine {
	return perfmodel.Server().ScaleCaches(cfg.cacheScale())
}

// DesktopMachine returns the scaled Desktop platform for this config.
func (cfg Config) DesktopMachine() perfmodel.Machine {
	return perfmodel.Desktop().ScaleCaches(cfg.cacheScale())
}

// Report is a rendered experiment result.
type Report struct {
	Title string
	Body  string
}

func (r *Report) String() string {
	return fmt.Sprintf("== %s ==\n%s", r.Title, r.Body)
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return sb.String()
}

func (cfg Config) build(f gen.Family, cores int) *circuit.Circuit {
	return gen.MustBuild(gen.Config(f, cores, cfg.Scale))
}

// Table2 reproduces the evaluated-designs table: node and edge counts,
// ideal vs real node reduction per design.
func (cfg Config) Table2() (*Report, error) {
	rows := [][]string{}
	for _, f := range cfg.Families {
		for _, n := range cfg.CoreCounts {
			c := cfg.build(f, n)
			r, err := dedup.Deduplicate(c, c.SchedGraph(), dedup.Options{})
			if err != nil {
				return nil, fmt.Errorf("table2 %s-%dC: %w", f, n, err)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%s-%dC", f, n),
				fmt.Sprintf("%d", c.NumNodes()),
				fmt.Sprintf("%d", c.NumEdges()),
				fmt.Sprintf("%.2f%%", 100*r.Stats.IdealReduction),
				fmt.Sprintf("%.2f%%", 100*r.Stats.RealReduction),
			})
		}
	}
	return &Report{
		Title: "Table 2: Evaluated designs and node reduction",
		Body: table([]string{"Design", "Nodes", "Edges", "Ideal Node Reduction", "Real Node Reduction"},
			rows),
	}, nil
}

// Fig8 reproduces single-simulation relative speed, normalized to ESSENT,
// for every variant on every design in the grid.
func (cfg Config) Fig8() (*Report, error) {
	m := cfg.ServerMachine()
	header := append([]string{"Design"}, variantNames(AllVariants)...)
	rows := [][]string{}
	for _, f := range cfg.Families {
		for _, n := range cfg.CoreCounts {
			c := cfg.build(f, n)
			speeds := map[Variant]float64{}
			for _, v := range AllVariants {
				meas, err := Measure(c, v, MeasureOptions{
					Machine: m, Workload: stimulus.VVAddA(), Cycles: cfg.Cycles,
				})
				if err != nil {
					return nil, fmt.Errorf("fig8 %s-%dC %s: %w", f, n, v, err)
				}
				speeds[v] = meas.Counters.SimHz
			}
			row := []string{fmt.Sprintf("%s-%dC", f, n)}
			base := speeds[ESSENT]
			for _, v := range AllVariants {
				row = append(row, fmt.Sprintf("%.2f", speeds[v]/base))
			}
			rows = append(rows, row)
		}
	}
	return &Report{
		Title: "Figure 8: Single-simulation speed relative to ESSENT (Server)",
		Body:  table(header, rows),
	}, nil
}

// Fig2 reproduces the LLC-constraint experiment: execution time versus
// allocated LLC ways on the largest design, normalized per variant to its
// full-cache time.
func (cfg Config) Fig2() (*Report, error) {
	m := cfg.ServerMachine()
	c := cfg.build(fig2Family(cfg), fig2Cores(cfg))
	variants := []Variant{Commercial, Verilator, ESSENT, Dedup}
	header := []string{"LLC ways (capacity)"}
	for _, v := range variants {
		header = append(header, string(v))
	}
	sweepWays := DefaultSweep(m)
	perWay := map[Variant][]perfmodel.Counters{}
	for _, v := range variants {
		meas, err := Measure(c, v, MeasureOptions{
			Machine: m, Workload: stimulus.VVAddA(), Cycles: cfg.Cycles,
			SweepWays: sweepWays,
		})
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", v, err)
		}
		perWay[v] = meas.WayCounters
	}
	rows := [][]string{}
	for i, w := range sweepWays {
		row := []string{fmt.Sprintf("%d (%s)", w, fmtBytes(float64(m.LLCSize)*float64(w)/float64(m.LLCWays)))}
		for _, v := range variants {
			cs := perWay[v]
			full := cs[len(cs)-1].SimHz
			row = append(row, fmt.Sprintf("%.2fx", full/cs[i].SimHz))
		}
		rows = append(rows, row)
	}
	return &Report{
		Title: fmt.Sprintf("Figure 2: Slowdown vs. allocated LLC on %s (1.00x = full cache)", c.Name),
		Body:  table(header, rows),
	}, nil
}

// Fig9 reproduces batch simulation throughput: aggregate simulated cycles
// per second for K parallel simulations, per design and variant, on the
// dual-socket server.
func (cfg Config) Fig9() (*Report, error) {
	return cfg.batchFigure("Figure 9: Batch throughput on Server (aggregate kHz of simulated cycles)",
		cfg.ServerMachine(), true, cfg.batchGrid(), stimulus.VVAddA())
}

// Fig10 reproduces the Desktop (3D V-Cache) batch experiment on a
// moderate and a large design.
func (cfg Config) Fig10() (*Report, error) {
	grid := []designPoint{
		{gen.Rocket, 4},
		{largestFamily(cfg), maxCores(cfg)},
	}
	ks := []int{}
	for _, k := range cfg.Parallel {
		if k <= cfg.DesktopMachine().Cores {
			ks = append(ks, k)
		}
	}
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8}
	}
	cfg2 := cfg
	cfg2.Parallel = ks
	return cfg2.batchFigure("Figure 10: Batch throughput on Desktop (3D V-Cache)",
		cfg.DesktopMachine(), false, grid, stimulus.VVAddA())
}

// Fig1 reproduces the motivating parallel-scaling figure: Commercial and
// Verilator on a large and a small design, normalized to one Commercial
// simulation of the same design.
func (cfg Config) Fig1() (*Report, error) {
	m := cfg.ServerMachine()
	grid := []designPoint{
		{largestFamily(cfg), maxCores(cfg)},
		{gen.Rocket, 1},
	}
	variants := []Variant{Commercial, Verilator}
	header := []string{"Design", "Simulator"}
	for _, k := range cfg.Parallel {
		header = append(header, fmt.Sprintf("K=%d", k))
	}
	rows := [][]string{}
	for _, dp := range grid {
		c := cfg.build(dp.family, dp.cores)
		var base float64
		for _, v := range variants {
			meas, err := Measure(c, v, MeasureOptions{
				Machine: m, Workload: stimulus.VVAddA(), Cycles: cfg.Cycles,
				Sweep: true,
			})
			if err != nil {
				return nil, fmt.Errorf("fig1 %s %s: %w", c.Name, v, err)
			}
			if v == Commercial {
				base = perfmodel.DualSocketBatch(meas.Curve, m, 1).Throughput
			}
			row := []string{c.Name, string(v)}
			for _, k := range cfg.Parallel {
				bp := perfmodel.DualSocketBatch(meas.Curve, m, k)
				row = append(row, fmt.Sprintf("%.2f", bp.Throughput/base))
			}
			rows = append(rows, row)
		}
	}
	return &Report{
		Title: "Figure 1: Parallel-scaling limits (throughput normalized to 1x Commercial)",
		Body:  table(header, rows),
	}, nil
}

// Table3 reproduces the Commercial-simulator contention table on
// SmallBoom-4C: relative throughput and average completion time per
// simulation for a fixed workload.
func (cfg Config) Table3() (*Report, error) {
	m := cfg.ServerMachine()
	c := cfg.build(gen.SmallBoom, min4(cfg))
	meas, err := Measure(c, Commercial, MeasureOptions{
		Machine: m, Workload: stimulus.VVAddA(), Cycles: cfg.Cycles,
		Sweep: true,
	})
	if err != nil {
		return nil, err
	}
	// Fixed per-simulation workload, sized so one unconstrained run takes
	// ~1000 modeled seconds like the paper's.
	p1 := perfmodel.DualSocketBatch(meas.Curve, m, 1)
	workCycles := p1.PerSimHz * 959
	header := []string{"Parallel Simulations"}
	thr := []string{"Relative Throughput"}
	avg := []string{"Avg. Time (s)"}
	for _, k := range cfg.Parallel {
		bp := perfmodel.DualSocketBatch(meas.Curve, m, k)
		header = append(header, fmt.Sprintf("%d", k))
		thr = append(thr, fmt.Sprintf("%.2f", bp.Throughput/p1.Throughput))
		avg = append(avg, fmt.Sprintf("%.0f", workCycles/bp.PerSimHz))
	}
	return &Report{
		Title: fmt.Sprintf("Table 3: Commercial simulator contention on %s", c.Name),
		Body:  table(header, [][]string{thr, avg}),
	}, nil
}

// Table4 reproduces the hardware-counter table on the large design at
// three LLC allocations for ESSENT, PO, NL, and Dedup.
func (cfg Config) Table4() (*Report, error) {
	m := cfg.ServerMachine()
	c := cfg.build(paperLargeFamily(cfg), table4Cores(cfg))
	variants := []Variant{ESSENT, PO, NL, Dedup}
	ways := []int{2, 4, 6}
	var body strings.Builder
	for _, w := range ways {
		if w > m.LLCWays {
			continue
		}
		capacity := fmtBytes(float64(m.LLCSize) * float64(w) / float64(m.LLCWays))
		rows := [][]string{}
		metric := func(name string, f func(perfmodel.Counters) string, cs map[Variant]perfmodel.Counters) {
			row := []string{name}
			for _, v := range variants {
				row = append(row, f(cs[v]))
			}
			rows = append(rows, row)
		}
		cs := map[Variant]perfmodel.Counters{}
		for _, v := range variants {
			meas, err := Measure(c, v, MeasureOptions{
				Machine: m, Workload: stimulus.VVAddA(), Cycles: cfg.Cycles, LLCWays: w,
			})
			if err != nil {
				return nil, fmt.Errorf("table4 %s: %w", v, err)
			}
			cs[v] = meas.Counters
		}
		metric("Instructions", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2e", float64(x.Instrs)) }, cs)
		metric("Exec Time (s)", func(x perfmodel.Counters) string { return fmt.Sprintf("%.4f", x.ExecSeconds) }, cs)
		metric("IPC", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2f", x.IPC) }, cs)
		metric("L1I MPKI", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2f", x.L1IMPKI) }, cs)
		metric("L1D MPKI", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2f", x.L1DMPKI) }, cs)
		metric("L2 MPKI", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2f", x.L2MPKI) }, cs)
		metric("L3 MPKI", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2f", x.L3MPKI) }, cs)
		metric("Branch MPKI", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2f", x.BranchMPKI) }, cs)
		metric("Pipeline Stall (%)", func(x perfmodel.Counters) string { return fmt.Sprintf("%.2f", x.StallPct) }, cs)
		fmt.Fprintf(&body, "-- Allocated LLC: %s (%d ways) --\n", capacity, w)
		body.WriteString(table(append([]string{"Metric"}, variantNames(variants)...), rows))
	}
	return &Report{
		Title: fmt.Sprintf("Table 4: Modeled hardware counters on %s (Server)", c.Name),
		Body:  body.String(),
	}, nil
}

// Fig11 reproduces the graph-partitioning-time comparison: wall-clock
// stage breakdown of the dedup partitioner versus the baseline.
func (cfg Config) Fig11() (*Report, error) {
	c := cfg.build(paperLargeFamily(cfg), table4Cores(cfg))
	g := c.SchedGraph()

	// Min-of-3 tames scheduler noise at these short absolute times.
	baseline := time.Duration(1 << 62)
	var t dedup.Timing
	t.Total = 1 << 62
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		if _, err := partition.Partition(g, partition.Options{}); err != nil {
			return nil, err
		}
		if d := time.Since(start); d < baseline {
			baseline = d
		}
		r, err := dedup.Deduplicate(c, g, dedup.Options{})
		if err != nil {
			return nil, err
		}
		if r.Timing.Total < t.Total {
			t = r.Timing
		}
	}
	rows := [][]string{
		{"ESSENT (baseline)", fmtDur(baseline), "1.000"},
		{"Dedup: partition one instance", fmtDur(t.PartitionInstance), frac(t.PartitionInstance, baseline)},
		{"Dedup: dissolve boundary/cycles", fmtDur(t.Dissolve), frac(t.Dissolve, baseline)},
		{"Dedup: apply to instances", fmtDur(t.Stamp), frac(t.Stamp, baseline)},
		{"Dedup: partition remainder", fmtDur(t.Remainder), frac(t.Remainder, baseline)},
		{"Dedup: total", fmtDur(t.Total), frac(t.Total, baseline)},
	}
	body := table([]string{"Stage", "Time", "Fraction of baseline"}, rows)
	body += "\nNote: the paper's 5.68x partitioning speedup relies on ESSENT's\n" +
		"superlinear acyclic partitioner; this library's coarsener is near-linear,\n" +
		"so the absolute times are milliseconds and the dedup flow's advantage is\n" +
		"correspondingly smaller (see EXPERIMENTS.md).\n"
	return &Report{
		Title: fmt.Sprintf("Figure 11: Graph partitioning time on %s (paper: Dedup = 17.6%% of ESSENT)", c.Name),
		Body:  body,
	}, nil
}

// Fig12 reproduces the workload-duration experiment on SmallBoom-6C:
// batch throughput for benchmarks A and B.
func (cfg Config) Fig12() (*Report, error) {
	m := cfg.ServerMachine()
	c := cfg.build(gen.SmallBoom, fig12Cores(cfg))
	variants := []Variant{Commercial, Verilator, ESSENT, Dedup}
	header := []string{"Workload", "Simulator"}
	for _, k := range cfg.Parallel {
		header = append(header, fmt.Sprintf("K=%d", k))
	}
	rows := [][]string{}
	best := map[string]float64{}
	for _, wl := range []stimulus.Workload{stimulus.VVAddA(), stimulus.VVAddB()} {
		cycles := cfg.Cycles
		if wl.Name == "B" && cycles > 0 {
			cycles *= 3 // longer, more active run (full 11.2x is unnecessary for the model)
		}
		perVar := map[Variant]perfmodel.Curve{}
		for _, v := range variants {
			meas, err := Measure(c, v, MeasureOptions{
				Machine: m, Workload: wl, Cycles: cycles, Sweep: true,
			})
			if err != nil {
				return nil, fmt.Errorf("fig12 %s %s: %w", wl.Name, v, err)
			}
			perVar[v] = meas.Curve
		}
		for _, v := range variants {
			row := []string{wl.Name, string(v)}
			for _, k := range cfg.Parallel {
				bp := perfmodel.DualSocketBatch(perVar[v], m, k)
				row = append(row, fmt.Sprintf("%.1f", bp.Throughput/1000))
				key := wl.Name + "/" + string(v)
				if bp.Throughput > best[key] {
					best[key] = bp.Throughput
				}
			}
			rows = append(rows, row)
		}
	}
	body := table(header, rows)
	if best["B/ESSENT"] > 0 && best["A/ESSENT"] > 0 {
		body += fmt.Sprintf("\nMax Dedup/ESSENT throughput: A %.3fx, B %.3fx (paper: 2.079x / 2.308x)\n",
			best["A/Dedup"]/best["A/ESSENT"], best["B/Dedup"]/best["B/ESSENT"])
	}
	return &Report{
		Title: fmt.Sprintf("Figure 12: Workload A vs B batch throughput on %s (kHz)", c.Name),
		Body:  body,
	}, nil
}

// --- shared helpers ------------------------------------------------------

type designPoint struct {
	family gen.Family
	cores  int
}

// batchGrid picks the Fig. 9 design grid from the config.
func (cfg Config) batchGrid() []designPoint {
	var grid []designPoint
	for _, f := range cfg.Families {
		for _, n := range cfg.CoreCounts {
			if n == 1 {
				continue // Fig. 9 focuses on replicated designs
			}
			grid = append(grid, designPoint{f, n})
		}
	}
	return grid
}

// batchFigure renders a batch-throughput grid for all variants.
func (cfg Config) batchFigure(title string, m perfmodel.Machine, dualSocket bool, grid []designPoint, wl stimulus.Workload) (*Report, error) {
	header := []string{"Design", "Simulator"}
	for _, k := range cfg.Parallel {
		header = append(header, fmt.Sprintf("K=%d", k))
	}
	rows := [][]string{}
	var maxGain float64
	var maxGainAt string
	for _, dp := range grid {
		c := cfg.build(dp.family, dp.cores)
		curves := map[Variant]perfmodel.Curve{}
		for _, v := range AllVariants {
			meas, err := Measure(c, v, MeasureOptions{
				Machine: m, Workload: wl, Cycles: cfg.Cycles, Sweep: true,
			})
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", c.Name, v, err)
			}
			curves[v] = meas.Curve
		}
		batch := func(v Variant, k int) perfmodel.BatchPoint {
			if dualSocket {
				return perfmodel.DualSocketBatch(curves[v], m, k)
			}
			return perfmodel.Batch(curves[v], m, k)
		}
		for _, v := range AllVariants {
			row := []string{c.Name, string(v)}
			for _, k := range cfg.Parallel {
				bp := batch(v, k)
				row = append(row, fmt.Sprintf("%.1f", bp.Throughput/1000))
				if v == Dedup {
					if e := batch(ESSENT, k); e.Throughput > 0 {
						if gain := bp.Throughput / e.Throughput; gain > maxGain {
							maxGain, maxGainAt = gain, fmt.Sprintf("%s K=%d", c.Name, k)
						}
					}
				}
			}
			rows = append(rows, row)
		}
	}
	body := table(header, rows)
	if maxGain > 0 {
		body += fmt.Sprintf("\nMax Dedup/ESSENT throughput gain: %.3fx at %s (paper: up to 2.09x)\n", maxGain, maxGainAt)
	}
	return &Report{Title: title, Body: body}, nil
}

func variantNames(vs []Variant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return out
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

func fmtDur(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }

func frac(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(a)/float64(b))
}

// Grid helpers clamp the paper's design choices to whatever the config
// includes (so QuickConfig still runs every experiment).
func largestFamily(cfg Config) gen.Family { return cfg.Families[len(cfg.Families)-1] }

// paperLargeFamily prefers LargeBoom — the paper's choice for Figs. 2/11
// and Table 4 — falling back to the largest configured family.
func paperLargeFamily(cfg Config) gen.Family {
	for _, f := range cfg.Families {
		if f == gen.LargeBoom {
			return f
		}
	}
	return largestFamily(cfg)
}

func maxCores(cfg Config) int {
	m := cfg.CoreCounts[0]
	for _, n := range cfg.CoreCounts {
		if n > m {
			m = n
		}
	}
	return m
}

func table4Cores(cfg Config) int { return clampCores(cfg, 6) }
func fig12Cores(cfg Config) int  { return clampCores(cfg, 6) }
func min4(cfg Config) int        { return clampCores(cfg, 4) }

func fig2Family(cfg Config) gen.Family { return paperLargeFamily(cfg) }
func fig2Cores(cfg Config) int         { return clampCores(cfg, 6) }

func clampCores(cfg Config, want int) int {
	best := cfg.CoreCounts[0]
	for _, n := range cfg.CoreCounts {
		if n <= want && n > best {
			best = n
		}
	}
	if want <= maxCores(cfg) {
		return want
	}
	return best
}
