package perfmodel

import (
	"dedupsim/internal/circuit"
	"dedupsim/internal/codegen"
	"dedupsim/internal/sim"
)

// Address-space bases for the modeled simulator process. Regions are far
// apart so they never alias.
const (
	codeBase  = uint64(0)
	slotBase  = uint64(1) << 32
	tableBase = uint64(1) << 33
	memBase   = uint64(1) << 34
	memStride = uint64(1) << 24 // per-memory region
)

// ActProfile precomputes the cache-line and branch-site footprint of one
// activation so trace replay is a tight loop.
type ActProfile struct {
	CodeLines []uint64
	DataLines []uint64 // activation table + touched slots
	Sites     []uint64 // branch-site identities
	Instrs    int
}

// Trace is a recorded execution: which activations ran on each simulated
// cycle, plus concrete memory-port traffic.
type Trace struct {
	Profiles []ActProfile
	// Cycles[i] lists executed activation indices of simulated cycle i.
	Cycles [][]int32
	// MemLines[i] lists memory-port line addresses touched in cycle i.
	MemLines [][]uint64
	// TotalInstrs is the modeled dynamic instruction count.
	TotalInstrs int64
	// SimCycles is the recorded simulated-cycle count.
	SimCycles int
	// CodeBytes is the unique code footprint; TableAndSlotBytes the
	// resident data footprint.
	CodeBytes int
}

// BuildProfiles lays out the program in the modeled address space and
// computes per-activation footprints.
func BuildProfiles(p *codegen.Program) []ActProfile {
	// Kernel code placement, 64-byte aligned.
	kbase := make([]uint64, len(p.Kernels))
	off := codeBase
	for i, k := range p.Kernels {
		kbase[i] = off
		off += uint64((k.CodeBytes + LineSize - 1) / LineSize * LineSize)
	}
	profiles := make([]ActProfile, len(p.Activations))
	toff := tableBase
	for i := range p.Activations {
		act := &p.Activations[i]
		k := p.Kernels[act.Kernel]
		pr := &profiles[i]
		for b := uint64(0); b < uint64(k.CodeBytes); b += LineSize {
			pr.CodeLines = append(pr.CodeLines, kbase[act.Kernel]+b)
		}
		// The activation's indirection tables are contiguous data.
		tbytes := 4*len(act.Ext) + 4*len(act.Mems)
		if tbytes > 0 {
			for b := uint64(0); b < uint64(tbytes); b += LineSize {
				pr.DataLines = append(pr.DataLines, toff+b)
			}
			toff += uint64((tbytes + LineSize - 1) / LineSize * LineSize)
		}
		// Touched state slots (8 bytes each).
		seen := map[uint64]bool{}
		for _, s := range act.TouchedSlots {
			line := (slotBase + uint64(s)*8) &^ (LineSize - 1)
			if !seen[line] {
				seen[line] = true
				pr.DataLines = append(pr.DataLines, line)
			}
		}
		// Branch sites live in the kernel's code: shared kernels SHARE
		// their sites across activations (that is the locality win).
		for s := 0; s < k.BranchSites; s++ {
			pr.Sites = append(pr.Sites, kbase[act.Kernel]+uint64(s)*16)
		}
		pr.Instrs = k.DynInstrs
	}
	return profiles
}

// Record runs the engine for the given number of cycles, calling drive
// before each Step to set inputs, and captures the activation and memory
// trace.
func Record(p *codegen.Program, activity bool, cycles int, drive func(e *sim.Engine, cycle int)) *Trace {
	e := sim.New(p, activity)
	tr := &Trace{
		Profiles:  BuildProfiles(p),
		Cycles:    make([][]int32, cycles),
		MemLines:  make([][]uint64, cycles),
		SimCycles: cycles,
		CodeBytes: p.UniqueCodeBytes,
	}
	cur := 0
	e.OnActivation = func(actIdx int32) {
		tr.Cycles[cur] = append(tr.Cycles[cur], actIdx)
		tr.TotalInstrs += int64(tr.Profiles[actIdx].Instrs)
	}
	e.OnMemAccess = func(mem int32, addr uint64, write bool) {
		line := (memBase + uint64(mem)*memStride + addr*8) &^ (LineSize - 1)
		tr.MemLines[cur] = append(tr.MemLines[cur], line)
	}
	for cyc := 0; cyc < cycles; cyc++ {
		cur = cyc
		drive(e, cyc)
		e.Step()
	}
	return tr
}

// EventTrace captures the activity profile an event-driven (commercial-
// style) simulator would process: one work item per changed signal per
// cycle.
type EventTrace struct {
	// Events[i] is the changed-signal count of simulated cycle i.
	Events []int64
	// Nodes is the design size (the interpreter's data-structure
	// footprint scales with it).
	Nodes     int
	SimCycles int
}

// RecordEvents runs the reference simulator and captures per-cycle
// activity for the event-driven cost model.
func RecordEvents(c *circuit.Circuit, cycles int, drive func(r *sim.Ref, cycle int)) (*EventTrace, error) {
	r, err := sim.NewRef(c)
	if err != nil {
		return nil, err
	}
	tr := &EventTrace{Nodes: c.NumNodes(), SimCycles: cycles}
	prev := int64(0)
	for cyc := 0; cyc < cycles; cyc++ {
		drive(r, cyc)
		r.Step()
		tr.Events = append(tr.Events, r.EventOps-prev)
		prev = r.EventOps
	}
	return tr, nil
}
