package perfmodel_test

import (
	"testing"

	"dedupsim/internal/gen"
	"dedupsim/internal/harness"
	"dedupsim/internal/partition"
	"dedupsim/internal/perfmodel"
	"dedupsim/internal/sim"
	"dedupsim/internal/stimulus"
)

// testMachine shrinks the server to match unit-test design scale.
func testMachine() perfmodel.Machine { return perfmodel.Server().ScaleCaches(64) }

func record(t *testing.T, f gen.Family, cores int, scale float64, v harness.Variant, cycles int) *perfmodel.Trace {
	t.Helper()
	c := gen.MustBuild(gen.Config(f, cores, scale))
	cv, err := harness.CompileVariant(c, v, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	drive := stimulus.VVAddA().NewDrive()
	return perfmodel.Record(cv.Program, cv.Activity, cycles,
		func(e *sim.Engine, cyc int) { drive(e, cyc) })
}

func TestCacheBasics(t *testing.T) {
	c := perfmodel.NewCache(4096, 4, 4) // 16 sets x 4 ways
	if c.SizeBytes() != 4096 {
		t.Fatalf("size = %d", c.SizeBytes())
	}
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	if !c.Access(63) {
		t.Fatal("same line missed")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("counters: %d accesses %d misses", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set x 2 ways: A, B, C evicts A; A misses again, and evicts B (LRU).
	c := perfmodel.NewCache(128, 2, 2)
	addrs := []uint64{0, 1 << 12, 2 << 12}
	for _, a := range addrs {
		c.Access(a)
	}
	if c.Access(addrs[0]) {
		t.Fatal("evicted line still hit")
	}
	// The A miss evicted LRU B, leaving {C, A}; both must now hit.
	if !c.Access(addrs[2]) || !c.Access(addrs[0]) {
		t.Fatal("resident lines missed after LRU replacement")
	}
}

func TestCacheWayMaskingShrinksCapacity(t *testing.T) {
	full := perfmodel.NewCache(1<<20, 16, 16)
	masked := perfmodel.NewCache(1<<20, 16, 4)
	if masked.SizeBytes() != full.SizeBytes()/4 {
		t.Fatalf("masked capacity = %d, want quarter of %d", masked.SizeBytes(), full.SizeBytes())
	}
	// A working set that fits in full but not in masked.
	n := (1 << 20) / 64 / 2
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			full.Access(uint64(i * 64))
			masked.Access(uint64(i * 64))
		}
	}
	if full.Misses >= masked.Misses {
		t.Fatalf("masking did not increase misses: %d vs %d", full.Misses, masked.Misses)
	}
}

func TestBranchTableReuseDistance(t *testing.T) {
	bt := perfmodel.NewBranchTable(64)
	// Back-to-back reuse of few sites: near-perfect after warmup.
	for i := 0; i < 100; i++ {
		bt.Lookup(uint64(i % 4 * 1024))
	}
	if bt.Mispredict > 8 {
		t.Fatalf("small working set mispredicted %d times", bt.Mispredict)
	}
	bt.ResetStats()
	// Sweeping far more sites than entries: constant misses.
	for i := 0; i < 1000; i++ {
		bt.Lookup(uint64(i * 977))
	}
	if float64(bt.Mispredict) < 0.5*float64(bt.Lookups) {
		t.Fatalf("capacity-exceeding sweep predicted too well: %d/%d", bt.Mispredict, bt.Lookups)
	}
}

func TestFig2ShapeLessCacheSlower(t *testing.T) {
	tr := record(t, gen.LargeBoom, 2, 0.15, harness.ESSENT, 120)
	m := testMachine()
	prev := -1.0
	for _, ways := range []int{2, 6, 11} {
		ctr := perfmodel.RunSingle(tr, m, ways)
		if prev > 0 && ctr.SimHz < prev*0.98 {
			t.Fatalf("more cache made simulation slower: %f -> %f at %d ways", prev, ctr.SimHz, ways)
		}
		prev = ctr.SimHz
	}
	few := perfmodel.RunSingle(tr, m, 1)
	many := perfmodel.RunSingle(tr, m, 11)
	if many.SimHz <= few.SimHz*1.05 {
		t.Fatalf("cache sensitivity missing: %d ways %.0f Hz vs 1 way %.0f Hz", 11, many.SimHz, few.SimHz)
	}
}

func TestTable4ShapeDedupCounters(t *testing.T) {
	cycles := 120
	trE := record(t, gen.LargeBoom, 4, 0.15, harness.ESSENT, cycles)
	trD := record(t, gen.LargeBoom, 4, 0.15, harness.Dedup, cycles)
	m := testMachine()
	e := perfmodel.RunSingle(trE, m, 4)
	d := perfmodel.RunSingle(trD, m, 4)

	if d.Instrs <= e.Instrs {
		t.Fatalf("dedup tax missing: instrs %d <= %d", d.Instrs, e.Instrs)
	}
	if d.L1IMPKI >= e.L1IMPKI {
		t.Fatalf("L1I MPKI did not improve: %.1f vs %.1f", d.L1IMPKI, e.L1IMPKI)
	}
	if d.BranchMPKI >= e.BranchMPKI {
		t.Fatalf("branch MPKI did not improve: %.2f vs %.2f", d.BranchMPKI, e.BranchMPKI)
	}
	if d.IPC <= e.IPC {
		t.Fatalf("IPC did not improve: %.2f vs %.2f", d.IPC, e.IPC)
	}
	t.Logf("ESSENT: instrs=%d IPC=%.2f L1I=%.1f br=%.2f | Dedup: instrs=%d IPC=%.2f L1I=%.1f br=%.2f",
		e.Instrs, e.IPC, e.L1IMPKI, e.BranchMPKI, d.Instrs, d.IPC, d.L1IMPKI, d.BranchMPKI)
}

func TestFig8ShapeDedupFasterOnManyCores(t *testing.T) {
	m := testMachine()
	speed := func(cores int, v harness.Variant) float64 {
		tr := record(t, gen.SmallBoom, cores, 0.15, v, 120)
		return perfmodel.RunSingle(tr, m, m.LLCWays).SimHz
	}
	e4, d4 := speed(4, harness.ESSENT), speed(4, harness.Dedup)
	if d4 <= e4 {
		t.Fatalf("4-core dedup not faster: %.0f vs %.0f", d4, e4)
	}
	t.Logf("SmallBoom-4C single-sim: Dedup/ESSENT = %.2fx", d4/e4)
}

func TestBatchModelSubLinear(t *testing.T) {
	tr := record(t, gen.LargeBoom, 2, 0.15, harness.ESSENT, 120)
	m := testMachine()
	curve := perfmodel.MeasureCurve(m, func(w int) perfmodel.Counters {
		return perfmodel.RunSingle(tr, m, w)
	})
	p1 := perfmodel.Batch(curve, m, 1)
	p8 := perfmodel.Batch(curve, m, 8)
	p24 := perfmodel.Batch(curve, m, 24)
	if p8.Throughput <= p1.Throughput {
		t.Fatal("8 parallel sims slower than 1")
	}
	// Past the contention knee, throughput may plateau or sag slightly
	// (paper Table 3: 11.45 at 40 sims -> 11.33 at 48) but must not
	// collapse.
	if p24.Throughput < 0.7*p8.Throughput {
		t.Fatalf("throughput collapsed: %.0f at 24 vs %.0f at 8", p24.Throughput, p8.Throughput)
	}
	scale24 := p24.Throughput / p1.Throughput
	if scale24 >= 24 {
		t.Fatalf("scaling is super-linear?! %.1fx at 24", scale24)
	}
	if p24.PerSimHz >= p1.PerSimHz {
		t.Fatal("per-sim speed should degrade under contention")
	}
	t.Logf("batch scaling: 1 -> %.2f (8) -> %.2f (24 cores)", p8.Throughput/p1.Throughput, scale24)
}

func TestDualSocketBatch(t *testing.T) {
	tr := record(t, gen.Rocket, 2, 0.15, harness.ESSENT, 80)
	m := testMachine()
	curve := perfmodel.MeasureCurve(m, func(w int) perfmodel.Counters {
		return perfmodel.RunSingle(tr, m, w)
	})
	single := perfmodel.Batch(curve, m, 24)
	dual := perfmodel.DualSocketBatch(curve, m, 48)
	if dual.Throughput <= single.Throughput {
		t.Fatal("two sockets not faster than one")
	}
	if dual.Throughput > 2.01*single.Throughput {
		t.Fatal("two sockets more than double throughput")
	}
}

func TestEventDrivenModel(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.Rocket, 2, 0.15))
	drive := stimulus.VVAddA().NewDrive()
	etr, err := perfmodel.RecordEvents(c, 120, func(r *sim.Ref, cyc int) { drive(r, cyc) })
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine()
	ctr := perfmodel.RunEventDriven(etr, m, m.LLCWays)
	if ctr.SimHz <= 0 || ctr.Instrs <= 0 {
		t.Fatalf("degenerate counters: %+v", ctr)
	}
	// The commercial-style interpreter should be slower than compiled
	// ESSENT on the same design and workload.
	cv, err := harness.CompileVariant(c, harness.ESSENT, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	drive2 := stimulus.VVAddA().NewDrive()
	tr := perfmodel.Record(cv.Program, true, 120, func(e *sim.Engine, cyc int) { drive2(e, cyc) })
	essent := perfmodel.RunSingle(tr, m, m.LLCWays)
	if ctr.SimHz >= essent.SimHz {
		t.Fatalf("event-driven (%.0f Hz) not slower than ESSENT (%.0f Hz)", ctr.SimHz, essent.SimHz)
	}
	t.Logf("Commercial %.0f Hz vs ESSENT %.0f Hz (%.1fx)", ctr.SimHz, essent.SimHz, essent.SimHz/ctr.SimHz)
}

func TestCurveInterpolation(t *testing.T) {
	c := perfmodel.Curve{
		CapBytes: []float64{100, 200, 300},
		SimHz:    []float64{10, 30, 40},
		MissBW:   []float64{9, 5, 1},
	}
	if hz, _ := c.At(50); hz != 10 {
		t.Fatalf("below range: %f", hz)
	}
	if hz, _ := c.At(150); hz != 20 {
		t.Fatalf("midpoint: %f", hz)
	}
	if hz, bw := c.At(999); hz != 40 || bw != 1 {
		t.Fatalf("above range: %f %f", hz, bw)
	}
}

func TestWorkloadActivityRates(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.SmallBoom, 2, 0.15))
	rate := func(w stimulus.Workload, cycles int) float64 {
		r, err := sim.NewRef(c)
		if err != nil {
			t.Fatal(err)
		}
		drive := w.NewDrive()
		for cyc := 0; cyc < cycles; cyc++ {
			drive(r, cyc)
			r.Step()
		}
		return r.ActivityRate()
	}
	a := rate(stimulus.VVAddA(), 300)
	b := rate(stimulus.VVAddB(), 300)
	if b <= a {
		t.Fatalf("workload B (%.3f) not more active than A (%.3f)", b, a)
	}
	if a < 0.01 || a > 0.30 {
		t.Fatalf("workload A activity implausible: %.3f", a)
	}
	t.Logf("activity: A=%.2f%% B=%.2f%% (paper: 6.52%% / 14.87%%)", 100*a, 100*b)
}
