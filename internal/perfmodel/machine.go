package perfmodel

// Machine describes a host platform (paper Table 1).
type Machine struct {
	Name string
	// Cores is the number of physical cores available to simulations
	// (one simulation per core, as in the paper's batch experiments).
	Cores int
	// FreqHz is the nominal core frequency.
	FreqHz float64

	// Private cache sizes per core and the shared last-level cache.
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	LLCSize, LLCWays int

	// Latencies in core cycles: the extra cost paid when a level misses
	// and the next level hits.
	L2Lat, LLCLat, MemLat int
	// BranchPenalty is the mispredict flush cost in cycles.
	BranchPenalty int
	// BranchEntries sizes the branch-site table.
	BranchEntries int
	// MemBW is the total off-chip bandwidth in bytes/second shared by all
	// cores.
	MemBW float64
	// BaseCPI is the no-stall cycles-per-instruction floor of the core.
	BaseCPI float64
}

// Server models one socket of the paper's dual Xeon Platinum 8260 host:
// 24 cores, 35.75 MB shared L3 (11 ways), 6-channel DDR4-2666. The
// paper's batch experiments use both sockets; Fig. 9 style runs treat the
// two sockets as 2x this machine.
func Server() Machine {
	return Machine{
		Name:    "Server",
		Cores:   24,
		FreqHz:  2.4e9,
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 1 << 20, L2Ways: 16,
		LLCSize: 35750 << 10, LLCWays: 11,
		L2Lat: 12, LLCLat: 38, MemLat: 170,
		BranchPenalty: 15,
		BranchEntries: 4096,
		MemBW:         125e9, // per-socket share of 250 GB/s
		BaseCPI:       0.3,
	}
}

// Desktop models the paper's AMD Ryzen 7 5800X3D: 8 cores and a 96 MB
// hybrid-bonded 3D V-Cache L3.
func Desktop() Machine {
	return Machine{
		Name:    "Desktop",
		Cores:   8,
		FreqHz:  3.4e9,
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 512 << 10, L2Ways: 8,
		LLCSize: 96 << 20, LLCWays: 16,
		L2Lat: 10, LLCLat: 46, MemLat: 190,
		BranchPenalty: 14,
		BranchEntries: 4096,
		MemBW:         50e9, // 2-channel DDR4-3200
		BaseCPI:       0.28,
	}
}

// scaleCaches returns a copy of m with all cache capacities divided by
// the given factor. The modeled designs are ~1/20 of the paper's node
// counts, so experiments shrink the host caches by the same factor to
// keep the design-size:cache-size ratio — and therefore the contention
// behavior — aligned with the paper.
func (m Machine) ScaleCaches(factor int) Machine {
	if factor <= 1 {
		return m
	}
	s := m
	s.L1ISize /= factor
	s.L1DSize /= factor
	s.L2Size /= factor
	s.LLCSize /= factor
	s.BranchEntries /= factor
	s.MemBW /= float64(factor)
	if s.BranchEntries < 64 {
		s.BranchEntries = 64
	}
	return s
}
