package perfmodel

// Curve captures how one simulator's speed and off-chip traffic respond
// to LLC capacity — measured once per design x variant by sweeping the
// way allocation, then reused by the analytic batch model. This mirrors
// the paper's methodology: single-simulation cache sensitivity (Fig. 2)
// explains multi-simulation throughput (Fig. 9).
type Curve struct {
	CapBytes []float64
	SimHz    []float64
	MissBW   []float64
}

// CapacitySweep returns the LLC byte capacities measured for contention
// curves: sub-way points (one way split 8/4/2 ways further) so K sharers
// squeezing a simulation below one way's worth interpolate measured data,
// then every way multiple up to the full cache.
func CapacitySweep(m Machine) []int {
	way := m.LLCSize / m.LLCWays
	caps := []int{way / 8, way / 4, way / 2}
	for _, w := range []int{1, 2, 3, 4, 6, 8, m.LLCWays} {
		if w >= 1 && w <= m.LLCWays {
			caps = append(caps, way*w)
		}
	}
	// Deduplicate while preserving order (small machines can collide).
	out := caps[:0]
	seen := map[int]bool{}
	for _, c := range caps {
		if c > 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// MeasureCurve measures speed and miss bandwidth at each capacity point.
func MeasureCurve(m Machine, run func(llcCapBytes int) Counters) Curve {
	var c Curve
	for _, capBytes := range CapacitySweep(m) {
		ctr := run(capBytes)
		c.CapBytes = append(c.CapBytes, float64(capBytes))
		c.SimHz = append(c.SimHz, ctr.SimHz)
		c.MissBW = append(c.MissBW, ctr.LLCMissBW)
	}
	return c
}

// At linearly interpolates the curve at the given capacity, clamping to
// the measured range.
func (c Curve) At(capBytes float64) (simHz, missBW float64) {
	n := len(c.CapBytes)
	if n == 0 {
		return 0, 0
	}
	if capBytes <= c.CapBytes[0] {
		return c.SimHz[0], c.MissBW[0]
	}
	if capBytes >= c.CapBytes[n-1] {
		return c.SimHz[n-1], c.MissBW[n-1]
	}
	for i := 1; i < n; i++ {
		if capBytes <= c.CapBytes[i] {
			f := (capBytes - c.CapBytes[i-1]) / (c.CapBytes[i] - c.CapBytes[i-1])
			return c.SimHz[i-1] + f*(c.SimHz[i]-c.SimHz[i-1]),
				c.MissBW[i-1] + f*(c.MissBW[i]-c.MissBW[i-1])
		}
	}
	return c.SimHz[n-1], c.MissBW[n-1]
}

// BatchPoint is one K-parallel-simulations measurement.
type BatchPoint struct {
	// K is the number of simultaneous simulations.
	K int
	// PerSimHz is each simulation's speed under contention.
	PerSimHz float64
	// Throughput is the aggregate simulated cycles per second.
	Throughput float64
}

// Batch models K identical simulations sharing one machine: each
// concurrent simulation receives an equal share of the LLC (identical
// processes have identical demand) and the aggregate off-chip traffic is
// capped by memory bandwidth — the two effects behind the paper's
// sub-linear scaling (Fig. 1, Table 3).
func Batch(c Curve, m Machine, k int) BatchPoint {
	if k < 1 {
		k = 1
	}
	conc := k
	if conc > m.Cores {
		conc = m.Cores
	}
	capPer := float64(m.LLCSize) / float64(conc)
	simHz, missBW := c.At(capPer)
	demand := float64(conc) * missBW
	if demand > m.MemBW && demand > 0 {
		simHz *= m.MemBW / demand
	}
	agg := float64(conc) * simHz
	// More simulations than cores time-share without adding throughput.
	perSim := agg / float64(k)
	return BatchPoint{K: k, PerSimHz: perSim, Throughput: agg}
}

// DualSocketBatch models the paper's two-socket server: simulations are
// split evenly across sockets, each an independent Machine (private LLC
// and memory channels).
func DualSocketBatch(c Curve, socket Machine, k int) BatchPoint {
	ka := (k + 1) / 2
	kb := k - ka
	pa := Batch(c, socket, ka)
	total := pa.Throughput
	if kb > 0 {
		total += Batch(c, socket, kb).Throughput
	}
	return BatchPoint{K: k, PerSimHz: total / float64(k), Throughput: total}
}
