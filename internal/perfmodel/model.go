package perfmodel

// Counters are the modeled hardware measurements for one simulation run
// (the rows of paper Table 4).
type Counters struct {
	// Instrs is the dynamic instruction count.
	Instrs int64
	// HostCycles is the modeled core-cycle total.
	HostCycles float64
	// ExecSeconds = HostCycles / frequency.
	ExecSeconds float64
	// IPC = Instrs / HostCycles.
	IPC float64
	// Misses per kilo-instruction per level, and branch mispredicts.
	L1IMPKI, L1DMPKI, L2MPKI, L3MPKI, BranchMPKI float64
	// StallPct is the fraction of cycles lost to stalls (x100).
	StallPct float64
	// SimHz is the simulation speed: simulated cycles per host second.
	SimHz float64
	// LLCMissBW is the off-chip traffic this simulation generates,
	// bytes per second of host time.
	LLCMissBW float64
}

// hier bundles one core's private caches plus an LLC view.
type hier struct {
	l1i, l1d, l2, llc              *Cache
	bt                             *BranchTable
	iStallL2, iStallLLC, iStallMem float64
	dStallL2, dStallLLC, dStallMem float64
}

func newHier(m Machine, llcWays int) *hier {
	return &hier{
		l1i: NewCache(m.L1ISize, m.L1IWays, m.L1IWays),
		l1d: NewCache(m.L1DSize, m.L1DWays, m.L1DWays),
		l2:  NewCache(m.L2Size, m.L2Ways, m.L2Ways),
		llc: NewCache(m.LLCSize, m.LLCWays, llcWays),
		bt:  NewBranchTable(m.BranchEntries),
	}
}

// newHierCap builds a hierarchy whose LLC has an arbitrary byte capacity
// at full associativity — finer than way masking, for contention curves
// where K sharers can squeeze a simulation below one way's worth.
func newHierCap(m Machine, llcCapBytes int) *hier {
	if llcCapBytes < LineSize*m.LLCWays {
		llcCapBytes = LineSize * m.LLCWays // at least one set
	}
	return &hier{
		l1i: NewCache(m.L1ISize, m.L1IWays, m.L1IWays),
		l1d: NewCache(m.L1DSize, m.L1DWays, m.L1DWays),
		l2:  NewCache(m.L2Size, m.L2Ways, m.L2Ways),
		llc: NewCache(llcCapBytes, m.LLCWays, m.LLCWays),
		bt:  NewBranchTable(m.BranchEntries),
	}
}

// accessI pushes one instruction-side line through the hierarchy.
func (h *hier) accessI(m Machine, line uint64) {
	if h.l1i.Access(line) {
		return
	}
	if h.l2.Access(line) {
		h.iStallL2 += float64(m.L2Lat)
		return
	}
	if h.llc.Access(line) {
		h.iStallLLC += float64(m.LLCLat)
		return
	}
	h.iStallMem += float64(m.MemLat)
}

// accessD pushes one data-side line through the hierarchy.
func (h *hier) accessD(m Machine, line uint64) {
	if h.l1d.Access(line) {
		return
	}
	if h.l2.Access(line) {
		h.dStallL2 += float64(m.L2Lat)
		return
	}
	if h.llc.Access(line) {
		h.dStallLLC += float64(m.LLCLat)
		return
	}
	h.dStallMem += float64(m.MemLat)
}

// dOverlap is the fraction of data-miss latency an out-of-order core
// cannot hide; instruction misses stall the frontend almost fully (the
// paper's Section 6.4 observation).
const dOverlap = 0.45

// counters folds the hierarchy's observations into Counters.
func (h *hier) counters(m Machine, instrs int64, simCycles int) Counters {
	iStall := h.iStallL2 + h.iStallLLC + h.iStallMem
	dStall := (h.dStallL2 + h.dStallLLC + h.dStallMem) * dOverlap
	bStall := float64(h.bt.Mispredict) * float64(m.BranchPenalty)
	base := float64(instrs) * m.BaseCPI
	total := base + iStall + dStall + bStall
	kilo := float64(instrs) / 1000
	if kilo == 0 {
		kilo = 1
	}
	sec := total / m.FreqHz
	c := Counters{
		Instrs:      instrs,
		HostCycles:  total,
		ExecSeconds: sec,
		IPC:         float64(instrs) / total,
		L1IMPKI:     float64(h.l1i.Misses) / kilo,
		L1DMPKI:     float64(h.l1d.Misses) / kilo,
		L2MPKI:      float64(h.l2.Misses) / kilo,
		L3MPKI:      float64(h.llc.Misses) / kilo,
		BranchMPKI:  float64(h.bt.Mispredict) / kilo,
		StallPct:    100 * (iStall + dStall + bStall) / total,
		SimHz:       float64(simCycles) / sec,
		LLCMissBW:   float64(h.llc.Misses) * LineSize / sec,
	}
	return c
}

// RunSingle replays a recorded trace through the host model with the
// given LLC way allocation (0 = all ways, -1 = LLC disabled), reproducing
// a single simulation on an otherwise idle machine (Fig. 2, Fig. 8,
// Table 4).
func RunSingle(tr *Trace, m Machine, llcWays int) Counters {
	return runTrace(tr, m, newHier(m, llcWays))
}

// RunSingleCap is RunSingle with an exact LLC byte capacity instead of a
// way allocation (contention-curve measurement).
func RunSingleCap(tr *Trace, m Machine, llcCapBytes int) Counters {
	return runTrace(tr, m, newHierCap(m, llcCapBytes))
}

func runTrace(tr *Trace, m Machine, h *hier) Counters {
	for cyc := 0; cyc < tr.SimCycles; cyc++ {
		for _, actIdx := range tr.Cycles[cyc] {
			pr := &tr.Profiles[actIdx]
			for _, line := range pr.CodeLines {
				h.accessI(m, line)
			}
			for _, line := range pr.DataLines {
				h.accessD(m, line)
			}
			for _, site := range pr.Sites {
				h.bt.Lookup(site)
			}
		}
		for _, line := range tr.MemLines[cyc] {
			h.accessD(m, line)
		}
	}
	return h.counters(m, tr.TotalInstrs, tr.SimCycles)
}

// Event-driven (commercial-style) cost constants: instructions per event
// (queue management, node dispatch, fan-out insertion) and data lines per
// event (node record + queue entry).
const (
	evInstrs     = 11
	evDataLines  = 2
	evNodeStride = 48 // bytes per node record in the interpreter's heap
)

// RunEventDriven models an event-driven interpreter processing the
// recorded activity. Event addresses spread over the design's node
// records via a deterministic hash, so the working set scales with
// design size — which is why the commercial simulator is the most
// cache-hungry in the paper's experiments.
func RunEventDriven(tr *EventTrace, m Machine, llcWays int) Counters {
	return runEvents(tr, m, newHier(m, llcWays))
}

// RunEventDrivenCap is RunEventDriven with an exact LLC byte capacity.
func RunEventDrivenCap(tr *EventTrace, m Machine, llcCapBytes int) Counters {
	return runEvents(tr, m, newHierCap(m, llcCapBytes))
}

func runEvents(tr *EventTrace, m Machine, h *hier) Counters {
	// The interpreter's own hot loop: a small, hot code footprint.
	const interpLines = 24 << 10 / LineSize
	footprint := uint64(tr.Nodes) * evNodeStride
	rng := uint64(0x243f6a8885a308d3)
	var instrs int64
	for cyc := 0; cyc < tr.SimCycles; cyc++ {
		events := tr.Events[cyc]
		instrs += events * evInstrs
		// Interpreter code stays hot; touch a rotating subset.
		for i := 0; i < 8; i++ {
			h.accessI(m, codeBase+uint64((cyc*8+i)%interpLines)*LineSize)
		}
		for e := int64(0); e < events; e++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			node := rng % footprint
			for l := 0; l < evDataLines; l++ {
				h.accessD(m, slotBase+(node&^(LineSize-1))+uint64(l)*LineSize)
			}
			// Event dispatch branches on node kind: site identity spreads
			// over the node space, defeating the predictor at scale.
			h.bt.Lookup(node >> 6)
		}
	}
	return h.counters(m, instrs, tr.SimCycles)
}
