// Package perfmodel is the trace-driven host-performance model that
// substitutes for the paper's hardware measurements (perf counters, Intel
// RDT way-masking, LLC contention between parallel simulators). It
// contains:
//
//   - set-associative LRU caches with way masking (Fig. 2 / Table 4's
//     RDT experiments);
//   - a BTB-style branch-prediction table whose hit rate depends on code
//     reuse distance (Table 4's branch MPKI);
//   - a stall-based CPU timing model turning misses into cycles;
//   - machine presets for the paper's Server (Xeon 8260) and Desktop
//     (Ryzen 5800X3D, 3D V-Cache) platforms;
//   - a batch-throughput model for K simulators sharing the LLC and
//     memory bandwidth (Figs. 1/9/10/12, Table 3).
//
// The model is driven by the activation trace of the real engine, so the
// effects the paper measures — smaller code footprints, shorter reuse
// distance, the instruction-count dedup tax — flow from the actual
// compiled programs, not from assumed constants.
package perfmodel

// Cache is a set-associative cache with true-LRU replacement, operating
// on 64-byte line addresses.
type Cache struct {
	sets   int
	ways   int
	shift  uint     // log2(lineSize)
	tags   []uint64 // sets*ways, 0 = invalid (tag stores addr|1)
	stamps []int64
	clock  int64

	// Accesses and Misses count since construction or ResetStats.
	Accesses int64
	Misses   int64
}

// LineSize is the modeled cache line size in bytes.
const LineSize = 64

// NewCache builds a cache of the given total size and associativity.
// Allocating fewer ways than the physical associativity models Intel RDT
// way-masking: capacity shrinks proportionally (sets stay fixed), which —
// like the real mechanism — raises conflict pressure at low way counts.
// allocWays < 0 disables the cache entirely (every access misses), the
// zero-capacity anchor of contention curves.
func NewCache(sizeBytes, physWays, allocWays int) *Cache {
	if allocWays < 0 {
		return &Cache{sets: 1, ways: 0, shift: 6}
	}
	if allocWays == 0 || allocWays > physWays {
		allocWays = physWays
	}
	sets := sizeBytes / (LineSize * physWays)
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		sets:   sets,
		ways:   allocWays,
		shift:  6,
		tags:   make([]uint64, sets*allocWays),
		stamps: make([]int64, sets*allocWays),
	}
}

// Access looks up the byte address and installs it on a miss. It reports
// whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	if c.ways == 0 {
		c.Accesses++
		c.Misses++
		return false
	}
	line := addr >> c.shift
	set := int(line) & (c.sets - 1)
	if c.sets&(c.sets-1) != 0 {
		set = int(line % uint64(c.sets))
	}
	tag := line | 1<<63 // bit 63 marks valid (addresses never use it)
	base := set * c.ways
	c.clock++
	c.Accesses++
	lruIdx, lruStamp := base, c.stamps[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamps[i] = c.clock
			return true
		}
		if c.stamps[i] < lruStamp {
			lruIdx, lruStamp = i, c.stamps[i]
		}
	}
	c.Misses++
	c.tags[lruIdx] = tag
	c.stamps[lruIdx] = c.clock
	return false
}

// SizeBytes returns the allocated capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * LineSize }

// ResetStats zeroes the counters without flushing contents.
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
}

// BranchTable models the host's branch prediction resources as a
// direct-mapped table of branch-site identities (a BTB with embedded
// direction history). A site predicts correctly when it still owns its
// slot; sites evicted by capacity or conflict mispredict on return. Code
// with short reuse distance therefore keeps its sites resident — exactly
// the benefit of locality-aware scheduling (paper Section 6.4).
type BranchTable struct {
	entries []uint64
	shift   uint

	Lookups    int64
	Mispredict int64
}

// NewBranchTable builds a table with the given entry count (power of two).
func NewBranchTable(entries int) *BranchTable {
	n := 1
	logN := uint(0)
	for n < entries {
		n <<= 1
		logN++
	}
	return &BranchTable{entries: make([]uint64, n), shift: 64 - logN}
}

// Lookup simulates one dynamic branch at the given site identity.
func (b *BranchTable) Lookup(site uint64) bool {
	key := site | 1<<63
	// Multiply-shift hashing uses the product's high bits, so aligned
	// site identities (code addresses are 16-byte aligned) still spread.
	idx := (site * 0x9e3779b97f4a7c15) >> b.shift
	b.Lookups++
	if b.entries[idx] == key {
		return true
	}
	b.entries[idx] = key
	b.Mispredict++
	return false
}

// ResetStats zeroes the counters without flushing the table.
func (b *BranchTable) ResetStats() { b.Lookups, b.Mispredict = 0, 0 }
