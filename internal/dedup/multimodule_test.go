package dedup

import (
	"testing"

	"dedupsim/internal/firrtl"
	"dedupsim/internal/gen"
)

func TestSelectModulesOrderingAndDisjointness(t *testing.T) {
	// testScale shrinks peripherals below 2 instances; use a scale where
	// the uncore still has repeated blocks.
	c := gen.MustBuild(gen.Config(gen.SmallBoom, 4, 0.25))
	choices := SelectModules(c)
	if len(choices) < 2 {
		t.Fatalf("expected cores + peripherals, got %d choices", len(choices))
	}
	if choices[0].Module != "SmallBoomCore" {
		t.Fatalf("primary choice %q, want the cores", choices[0].Module)
	}
	for i := 1; i < len(choices); i++ {
		if choices[i].Benefit > choices[i-1].Benefit {
			t.Fatal("choices not sorted by benefit")
		}
	}
	// Lanes/ALUs are nested inside the cores and must NOT be selected.
	for _, ch := range choices {
		if ch.Module == "SmallBoomCore_Lane" || ch.Module == "SmallBoomCore_ALU" {
			t.Fatalf("nested module %q selected alongside its parent", ch.Module)
		}
	}
	// Node sets across all choices must be disjoint.
	seen := map[int32]string{}
	for _, ch := range choices {
		for _, set := range ch.NodeSets {
			for _, v := range set {
				if prev, dup := seen[v]; dup {
					t.Fatalf("node %d claimed by both %s and %s", v, prev, ch.Module)
				}
				seen[v] = ch.Module
			}
		}
	}
}

// heteroSoC instantiates two DIFFERENT substantial modules twice each, so
// single-module dedup can only claim one of them.
const heteroSoC = `
circuit Hetero :
  module Alpha :
    input in : UInt<32>
    output out : UInt<32>
    reg inr : UInt<32>, reset 0
    inr <= in
    reg a0 : UInt<32>, reset 1
    reg a1 : UInt<32>, reset 2
    reg a2 : UInt<32>, reset 3
    a0 <= add(a0, inr)
    a1 <= xor(a1, shl(a0, UInt<2>(1)))
    a2 <= mux(lt(a1, a0), add(a2, a1), a2)
    out <= add(a2, a0)

  module Beta :
    input in : UInt<32>
    output out : UInt<32>
    reg inr : UInt<32>, reset 0
    inr <= in
    reg b0 : UInt<32>, reset 7
    reg b1 : UInt<32>, reset 9
    b0 <= sub(b0, inr)
    b1 <= or(b1, shr(b0, UInt<2>(2)))
    out <= xor(b1, b0)

  module Hetero :
    input x : UInt<32>
    output y : UInt<32>
    inst a0 of Alpha
    inst a1 of Alpha
    inst b0 of Beta
    inst b1 of Beta
    a0.in <= x
    a1.in <= not(x)
    b0.in <= a0.out
    b1.in <= a1.out
    y <= xor(xor(a0.out, a1.out), xor(b0.out, b1.out))
`

func TestMultiModuleDeduplicatesMore(t *testing.T) {
	c, err := firrtl.Compile(heteroSoC)
	if err != nil {
		t.Fatal(err)
	}
	g := c.SchedGraph()
	single, err := Deduplicate(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Deduplicate(c, g, Options{MultiModule: true})
	if err != nil {
		t.Fatal(err)
	}
	checkDedupResult(t, c, g, single)
	checkDedupResult(t, c, g, multi)
	if len(multi.Stats.Modules) <= len(single.Stats.Modules) {
		t.Fatalf("multi-module deduped %v, single %v", multi.Stats.Modules, single.Stats.Modules)
	}
	if multi.Stats.RealReduction <= single.Stats.RealReduction {
		t.Fatalf("multi-module did not increase reduction: %.3f vs %.3f",
			multi.Stats.RealReduction, single.Stats.RealReduction)
	}
	if multi.NumClasses <= single.NumClasses {
		t.Fatalf("multi-module classes %d <= single %d", multi.NumClasses, single.NumClasses)
	}
	t.Logf("real reduction: single %.2f%% -> multi %.2f%% (modules %v)",
		100*single.Stats.RealReduction, 100*multi.Stats.RealReduction, multi.Stats.Modules)
}

func TestMultiModuleSingleCoreDesign(t *testing.T) {
	// On a 1C design multi-module can grab lanes AND peripherals, which a
	// single-module run cannot.
	c := gen.MustBuild(gen.Config(gen.LargeBoom, 1, 0.25))
	g := c.SchedGraph()
	multi, err := Deduplicate(c, g, Options{MultiModule: true})
	if err != nil {
		t.Fatal(err)
	}
	checkDedupResult(t, c, g, multi)
	if len(multi.Stats.Modules) < 2 {
		t.Fatalf("1C design should offer several repeated modules, got %v", multi.Stats.Modules)
	}
}

func TestMultiModuleClassInstanceConsistency(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.Rocket, 2, testScale))
	g := c.SchedGraph()
	r, err := Deduplicate(c, g, Options{MultiModule: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every class must have >= 2 member partitions, all the same size.
	byClass := map[int32][]int32{}
	for p, cl := range r.Class {
		if cl >= 0 {
			byClass[cl] = append(byClass[cl], int32(p))
		}
	}
	if len(byClass) != r.NumClasses {
		t.Fatalf("NumClasses %d but %d distinct classes", r.NumClasses, len(byClass))
	}
	for cl, parts := range byClass {
		if len(parts) < 2 {
			t.Fatalf("class %d has a single member", cl)
		}
		for _, p := range parts[1:] {
			if len(r.Members[p]) != len(r.Members[parts[0]]) {
				t.Fatalf("class %d member sizes differ", cl)
			}
		}
	}
}
