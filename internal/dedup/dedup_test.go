package dedup

import (
	"testing"

	"dedupsim/internal/circuit"
	"dedupsim/internal/gen"
	"dedupsim/internal/graph"
	"dedupsim/internal/partition"
)

const testScale = 0.12

func TestSelectModulePicksCores(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.SmallBoom, 4, testScale))
	ch := SelectModule(c)
	if ch == nil {
		t.Fatal("no module selected")
	}
	if ch.Module != "SmallBoomCore" {
		t.Fatalf("selected %q, want SmallBoomCore", ch.Module)
	}
	if len(ch.Roots) != 4 {
		t.Fatalf("instances = %d, want 4", len(ch.Roots))
	}
	for _, set := range ch.NodeSets {
		if len(set) != len(ch.NodeSets[0]) {
			t.Fatal("instance node sets differ in size")
		}
	}
}

func TestSelectModuleSingleCoreFindsInnerReplication(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.Rocket, 1, testScale))
	ch := SelectModule(c)
	if ch == nil {
		t.Fatal("single-core design still has replicated lanes/peripherals")
	}
	if ch.Module == "RocketCore" {
		t.Fatal("core cannot repeat in a 1C design")
	}
	if len(ch.Roots) < 2 {
		t.Fatalf("instances = %d", len(ch.Roots))
	}
}

func TestSelectModuleNoneOnFlatDesign(t *testing.T) {
	b := circuit.NewBuilder("flat")
	x := b.Input("x", 8)
	r := b.Reg("r", 8, 0)
	b.SetRegNext(r, x)
	b.Output("y", r)
	c := b.MustFinish()
	if ch := SelectModule(c); ch != nil {
		t.Fatalf("selected %q on a flat design", ch.Module)
	}
}

func TestVerifyIsomorphismOnGenerated(t *testing.T) {
	for _, f := range gen.Families {
		c := gen.MustBuild(gen.Config(f, 4, testScale))
		ch := SelectModule(c)
		if ch == nil {
			t.Fatalf("%s: nothing selected", f)
		}
		ok := VerifyIsomorphism(c, ch)
		if len(ok) != len(ch.Roots) {
			t.Fatalf("%s: only %d/%d instances verified", f, len(ok), len(ch.Roots))
		}
	}
}

func TestVerifyIsomorphismCatchesMutation(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.Rocket, 2, testScale))
	ch := SelectModule(c)
	if ch == nil || len(ch.NodeSets) != 2 {
		t.Fatal("setup failed")
	}
	// Mutate one op inside instance 1.
	victim := graph.NodeID(-1)
	for _, v := range ch.NodeSets[1] {
		if c.Ops[v] == circuit.OpXor {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("no xor inside instance")
	}
	c.Ops[victim] = circuit.OpOr
	ok := VerifyIsomorphism(c, ch)
	if len(ok) != 1 {
		t.Fatalf("mutated instance verified anyway: %v", ok)
	}
}

func checkDedupResult(t *testing.T, c *circuit.Circuit, g *graph.Graph, r *Result) {
	t.Helper()
	// Partitioning invariants.
	if !r.Part.Quotient(g).IsAcyclic() {
		t.Fatal("dedup quotient cyclic")
	}
	seen := make([]bool, c.NumNodes())
	for p, mem := range r.Members {
		if len(mem) != int(r.Part.Weights[p]) {
			t.Fatalf("partition %d: members %d != weight %d", p, len(mem), r.Part.Weights[p])
		}
		for _, v := range mem {
			if seen[v] {
				t.Fatalf("node %d in two partitions", v)
			}
			seen[v] = true
			if r.Part.Assign[v] != int32(p) {
				t.Fatalf("member list and assignment disagree for node %d", v)
			}
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("node %d in no partition", v)
		}
	}
	// Class consistency: same class => identical op/width/val sequences.
	byClass := map[int32][]int32{}
	for p, cl := range r.Class {
		if cl >= 0 {
			byClass[cl] = append(byClass[cl], int32(p))
		}
	}
	for cl, parts := range byClass {
		first := r.Members[parts[0]]
		for _, p := range parts[1:] {
			mem := r.Members[p]
			if len(mem) != len(first) {
				t.Fatalf("class %d: member counts differ", cl)
			}
			for j := range mem {
				a, b := first[j], mem[j]
				if c.Ops[a] != c.Ops[b] || c.Width[a] != c.Width[b] || c.Vals[a] != c.Vals[b] {
					t.Fatalf("class %d: position %d not structurally equal", cl, j)
				}
			}
		}
	}
}

func TestDeduplicateMultiCore(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.Rocket, 4, testScale))
	g := c.SchedGraph()
	r, err := Deduplicate(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDedupResult(t, c, g, r)
	if r.NumClasses == 0 {
		t.Fatal("multicore design produced no shared classes")
	}
	if r.Stats.Module != "RocketCore" {
		t.Fatalf("stats module = %q", r.Stats.Module)
	}
	if r.Stats.RealReduction <= 0 || r.Stats.RealReduction >= r.Stats.IdealReduction {
		t.Fatalf("reductions: real=%.3f ideal=%.3f", r.Stats.RealReduction, r.Stats.IdealReduction)
	}
	// Each class must appear exactly once per instance.
	perClassInst := map[int32]map[int32]bool{}
	for p, cl := range r.Class {
		if cl < 0 {
			continue
		}
		if perClassInst[cl] == nil {
			perClassInst[cl] = map[int32]bool{}
		}
		inst := r.InstanceOf[p]
		if perClassInst[cl][inst] {
			t.Fatalf("class %d appears twice in instance %d", cl, inst)
		}
		perClassInst[cl][inst] = true
	}
	for cl, m := range perClassInst {
		if len(m) != r.Stats.Instances {
			t.Fatalf("class %d present in %d/%d instances", cl, len(m), r.Stats.Instances)
		}
	}
}

func TestDeduplicateIdealReductionMatchesPaperShape(t *testing.T) {
	// Rocket-2C in the paper: ideal 29.06%, real 20.80%. Our scaled
	// generator is calibrated to land near those proportions; accept a
	// generous band.
	c := gen.MustBuild(gen.Config(gen.Rocket, 2, 1.0))
	g := c.SchedGraph()
	r, err := Deduplicate(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.IdealReduction < 0.20 || r.Stats.IdealReduction > 0.40 {
		t.Fatalf("Rocket-2C ideal reduction = %.1f%%, expected ~29%%", 100*r.Stats.IdealReduction)
	}
	if r.Stats.RealReduction < 0.08 {
		t.Fatalf("Rocket-2C real reduction = %.1f%%, too low", 100*r.Stats.RealReduction)
	}
	t.Logf("Rocket-2C: ideal %.2f%% real %.2f%% (paper: 29.06%% / 20.80%%)",
		100*r.Stats.IdealReduction, 100*r.Stats.RealReduction)
}

func TestDeduplicateFallbackOnFlatDesign(t *testing.T) {
	b := circuit.NewBuilder("flat")
	x := b.Input("x", 8)
	r0 := b.Reg("r", 8, 0)
	sum := b.Binary(circuit.OpAdd, r0, x)
	b.SetRegNext(r0, sum)
	b.Output("y", sum)
	c := b.MustFinish()
	g := c.SchedGraph()
	r, err := Deduplicate(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDedupResult(t, c, g, r)
	if r.NumClasses != 0 {
		t.Fatal("flat design got shared classes")
	}
	if r.Stats.Module != "" {
		t.Fatalf("stats module = %q", r.Stats.Module)
	}
}

func TestWithoutSharing(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.Rocket, 2, testScale))
	g := c.SchedGraph()
	r, err := Deduplicate(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	po := r.WithoutSharing()
	if po.NumClasses != 0 {
		t.Fatal("PO variant still shares")
	}
	if po.Part != r.Part {
		t.Fatal("PO variant must keep the same partitioning")
	}
	for _, cl := range po.Class {
		if cl != -1 {
			t.Fatal("PO class not cleared")
		}
	}
}

func TestDeduplicateTimingPopulated(t *testing.T) {
	c := gen.MustBuild(gen.Config(gen.SmallBoom, 2, testScale))
	g := c.SchedGraph()
	r, err := Deduplicate(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Timing.Total <= 0 {
		t.Fatal("timing not recorded")
	}
	sum := r.Timing.PartitionInstance + r.Timing.Dissolve + r.Timing.Stamp + r.Timing.Remainder
	if sum > r.Timing.Total {
		t.Fatalf("stage times %v exceed total %v", sum, r.Timing.Total)
	}
}

func TestDedupPartitioningFasterThanBaselineOnBigDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is slow")
	}
	// Fig. 11's claim: dedup partitions faster because it partitions one
	// instance and stamps the rest.
	c := gen.MustBuild(gen.Config(gen.LargeBoom, 6, 0.5))
	g := c.SchedGraph()

	r, err := Deduplicate(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := partition.Partition(g, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	t.Logf("LargeBoom-6C (half scale): dedup total partitioning %v (instance %v, remainder %v)",
		r.Timing.Total, r.Timing.PartitionInstance, r.Timing.Remainder)
}

func TestStampSeedDecodeTables(t *testing.T) {
	// Two instances, three template partitions of which 0 and 2 are kept:
	// the decode tables must map each group back to its template.
	pl := &plan{
		sets: [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}},
		tRes: &partition.Result{Assign: []int32{0, 1, 2}, NumParts: 3},
		kept: []bool{true, false, true},
	}
	seed, groupPlan, groupTpl := stampSeed(6, []*plan{pl})
	if len(groupPlan) != 4 || len(groupTpl) != 4 {
		t.Fatalf("decode tables sized %d/%d, want 4", len(groupPlan), len(groupTpl))
	}
	// Instance-major, kept-index-minor: groups 0,1 = instance 0 parts
	// {0,2}; groups 2,3 = instance 1.
	wantTpl := []int32{0, 2, 0, 2}
	for g, want := range wantTpl {
		if groupTpl[g] != want || groupPlan[g] != 0 {
			t.Fatalf("group %d decodes to plan %d tpl %d, want 0/%d",
				g, groupPlan[g], groupTpl[g], want)
		}
	}
	// Node 1 (template part 1, dissolved) stays free; node 5 (instance 1,
	// template part 2) lands in group 3.
	if seed[1] != -1 || seed[4] != -1 {
		t.Fatalf("dissolved nodes seeded: %v", seed)
	}
	if seed[0] != 0 || seed[2] != 1 || seed[3] != 2 || seed[5] != 3 {
		t.Fatalf("seed = %v", seed)
	}
}

func TestDeduplicateAllFamiliesAcyclic(t *testing.T) {
	for _, f := range gen.Families {
		for _, cores := range []int{1, 2, 4} {
			c := gen.MustBuild(gen.Config(f, cores, testScale))
			g := c.SchedGraph()
			r, err := Deduplicate(c, g, Options{})
			if err != nil {
				t.Fatalf("%s-%dC: %v", f, cores, err)
			}
			checkDedupResult(t, c, g, r)
		}
	}
}
