// Package dedup implements the paper's contribution: coarse-grained
// circuit deduplication for RTL simulation (Section 4). Given an
// elaborated circuit, it
//
//  1. selects the replicated module with the greatest benefit
//     (instances x size),
//  2. verifies that the instances are structurally isomorphic,
//  3. acyclically partitions ONE instance as a template (Fig. 7a),
//  4. dissolves template partitions on the instance boundary — the only
//     ones whose differing external context can close a cycle (Fig. 7b),
//  5. stamps the surviving template partitions onto every instance
//     (Fig. 7c), iteratively dissolving any residual cycle-forming
//     partitions,
//  6. partitions the remaining free nodes around the frozen stamped
//     partitions (Fig. 7d).
//
// The result is an acyclic partitioning in which corresponding partitions
// across instances are marked as members of a shared *class*: the code
// generator emits one kernel per class and reuses it for every instance,
// which is what shrinks the simulator's cache footprint.
package dedup

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"dedupsim/internal/circuit"
	"dedupsim/internal/graph"
	"dedupsim/internal/partition"
)

// Choice is the replicated module selected for deduplication.
type Choice struct {
	// Module is the selected module name.
	Module string
	// Roots are the instance-tree indices of each instance.
	Roots []int32
	// NodeSets[i] lists the nodes owned by instance i's subtree, in
	// ascending ID order. All sets have equal length; position k is the
	// structural correspondence used for template stamping.
	NodeSets [][]graph.NodeID
	// Benefit = len(Roots) * len(NodeSets[0]).
	Benefit int
}

// SelectModule picks the module with maximum benefit (instances x subtree
// size) among modules instantiated at least twice, mirroring the paper's
// selection rule (Section 4). It returns nil when no module repeats.
func SelectModule(c *circuit.Circuit) *Choice {
	byInst := c.NodesByDeepInstance()
	subtrees := c.InstanceSubtrees()

	roots := map[string][]int32{}
	for i := 1; i < len(c.Instances); i++ {
		m := c.Instances[i].Module
		roots[m] = append(roots[m], int32(i))
	}

	var best *Choice
	for module, rs := range roots {
		if len(rs) < 2 {
			continue
		}
		size := 0
		for _, inst := range subtrees[rs[0]] {
			size += len(byInst[inst])
		}
		benefit := len(rs) * size
		if best == nil || benefit > best.Benefit ||
			(benefit == best.Benefit && module < best.Module) {
			best = &Choice{Module: module, Roots: rs, Benefit: benefit}
		}
	}
	if best == nil {
		return nil
	}
	for _, r := range best.Roots {
		var set []graph.NodeID
		for _, inst := range subtrees[r] {
			set = append(set, byInst[inst]...)
		}
		sortNodeIDs(set)
		best.NodeSets = append(best.NodeSets, set)
	}
	return best
}

// SelectModules returns every eligible repeated module in descending
// benefit order. A module is skipped when its instances sit inside the
// subtree of a higher-benefit choice (nested replication, Figure 6c, is
// not deduplicated).
func SelectModules(c *circuit.Circuit) []*Choice {
	byInst := c.NodesByDeepInstance()
	subtrees := c.InstanceSubtrees()

	roots := map[string][]int32{}
	for i := 1; i < len(c.Instances); i++ {
		m := c.Instances[i].Module
		roots[m] = append(roots[m], int32(i))
	}
	type cand struct {
		module  string
		rs      []int32
		benefit int
	}
	var cands []cand
	for module, rs := range roots {
		if len(rs) < 2 {
			continue
		}
		size := 0
		for _, inst := range subtrees[rs[0]] {
			size += len(byInst[inst])
		}
		cands = append(cands, cand{module, rs, len(rs) * size})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].benefit != cands[j].benefit {
			return cands[i].benefit > cands[j].benefit
		}
		return cands[i].module < cands[j].module
	})

	claimed := make([]bool, len(c.Instances))
	var out []*Choice
	for _, cd := range cands {
		overlap := false
		for _, r := range cd.rs {
			for _, inst := range subtrees[r] {
				if claimed[inst] {
					overlap = true
					break
				}
			}
			if overlap {
				break
			}
		}
		if overlap {
			continue
		}
		ch := &Choice{Module: cd.module, Roots: cd.rs, Benefit: cd.benefit}
		for _, r := range cd.rs {
			var set []graph.NodeID
			for _, inst := range subtrees[r] {
				claimed[inst] = true
				set = append(set, byInst[inst]...)
			}
			sortNodeIDs(set)
			ch.NodeSets = append(ch.NodeSets, set)
		}
		out = append(out, ch)
	}
	return out
}

func sortNodeIDs(s []graph.NodeID) {
	slices.Sort(s)
}

// VerifyIsomorphism checks that every instance in the choice is
// structurally identical to instance 0 under the positional
// correspondence: matching ops, widths, constants, internal argument
// wiring, and a consistent per-instance memory mapping. It returns the
// indices (into ch.Roots) of the instances that verify, always including
// 0. Instances that fail are excluded from deduplication rather than
// miscompiled.
func VerifyIsomorphism(c *circuit.Circuit, ch *Choice) []int {
	if len(ch.Roots) == 0 {
		return nil
	}
	tmpl := ch.NodeSets[0]
	// localIdx maps a template node to its position k, and -1 otherwise.
	localIdx := make([]int32, c.NumNodes())
	for i := range localIdx {
		localIdx[i] = -1
	}
	for k, v := range tmpl {
		localIdx[v] = int32(k)
	}

	ok := []int{0}
	for i := 1; i < len(ch.NodeSets); i++ {
		if verifyOne(c, tmpl, localIdx, ch.NodeSets[i]) {
			ok = append(ok, i)
		}
	}
	return ok
}

func verifyOne(c *circuit.Circuit, tmpl []graph.NodeID, localIdx []int32, set []graph.NodeID) bool {
	if len(set) != len(tmpl) {
		return false
	}
	inSet := make(map[graph.NodeID]int32, len(set))
	for k, v := range set {
		inSet[v] = int32(k)
	}
	memMap := map[int32]int32{} // template memory -> instance memory
	memRev := map[int32]int32{}
	for k, tv := range tmpl {
		iv := set[k]
		if c.Ops[tv] != c.Ops[iv] || c.Width[tv] != c.Width[iv] || c.Vals[tv] != c.Vals[iv] {
			return false
		}
		ta, ia := c.Args[tv], c.Args[iv]
		if len(ta) != len(ia) {
			return false
		}
		for j := range ta {
			tk := localIdx[ta[j]]
			ik, internal := inSet[ia[j]]
			if tk >= 0 {
				// Internal argument: must map to the corresponding node.
				if !internal || ik != tk {
					return false
				}
			} else if internal {
				// Template reads externally but the instance internally.
				return false
			}
		}
		if tm := c.MemOf[tv]; tm >= 0 {
			im := c.MemOf[iv]
			if im < 0 {
				return false
			}
			if prev, seen := memMap[tm]; seen && prev != im {
				return false
			}
			if prev, seen := memRev[im]; seen && prev != tm {
				return false
			}
			memMap[tm] = im
			memRev[im] = tm
		}
	}
	return true
}

// Options tunes the deduplication flow.
type Options struct {
	// Partition configures the acyclic partitioner (template and
	// remainder).
	Partition partition.Options
	// MaxCycleRounds bounds the iterative dissolve-on-cycle loop; each
	// round removes at least one template partition, so the loop always
	// terminates, but a bound keeps pathological inputs fast. Default 64.
	MaxCycleRounds int
	// MultiModule extends deduplication beyond the single best module to
	// every eligible repeated module (the paper's Figure 6b "multiple
	// sets" extension; the paper itself dedups only one). Nested
	// replication inside an already-deduplicated module is still skipped
	// (Figure 6c remains future work).
	MultiModule bool
}

func (o Options) withDefaults() Options {
	if o.MaxCycleRounds <= 0 {
		o.MaxCycleRounds = 64
	}
	return o
}

// Stats summarizes what deduplication achieved on a design (Table 2).
// With Options.MultiModule, the scalar fields describe the primary
// (highest-benefit) module and the reductions aggregate over all of them.
type Stats struct {
	TotalNodes   int
	Module       string // chosen module ("" when nothing repeats)
	Instances    int    // verified instance count
	InstanceSize int    // nodes per instance
	// Modules lists every module actually deduplicated (one entry unless
	// Options.MultiModule).
	Modules []string
	// IdealReduction is the node fraction removable if every node of all
	// duplicated instances beyond the first could be shared.
	IdealReduction float64
	// RealReduction is the fraction actually shared after dissolving
	// boundary and cycle-forming partitions.
	RealReduction float64
	// KeptNodes is the per-instance node count inside shared partitions.
	KeptNodes int
	// TemplateParts / KeptParts count template partitions before/after
	// dissolution.
	TemplateParts      int
	KeptParts          int
	DissolvedBoundary  int
	DissolvedForCycles int
}

// Timing breaks down where partitioning time went (Fig. 11).
type Timing struct {
	PartitionInstance time.Duration // Fig. 7a
	Dissolve          time.Duration // Fig. 7b: boundary + cycle removal
	Stamp             time.Duration // Fig. 7c
	Remainder         time.Duration // Fig. 7d
	Total             time.Duration
}

// Result is a deduplicated acyclic partitioning.
type Result struct {
	// Part is the final partitioning of the full scheduling graph.
	Part *partition.Result
	// Class[p] is the shared-code class of partition p, or -1 when p has
	// unique code. Partitions of one class are structurally identical
	// across instances and can share a compiled kernel.
	Class []int32
	// NumClasses counts distinct shared classes.
	NumClasses int
	// InstanceOf[p] is the index (into Instances order 0..k-1) of the
	// deduplicated instance owning partition p, or -1.
	InstanceOf []int32
	// Members[p] lists partition p's nodes. For shared partitions the
	// order is canonical: position j corresponds across all partitions of
	// the class, which is what lets the code generator reuse one kernel
	// body with per-instance state tables.
	Members [][]graph.NodeID

	Stats  Stats
	Timing Timing
}

// Deduplicate runs the full flow on circuit c with scheduling graph g
// (normally c.SchedGraph(), passed in so callers can reuse it).
func Deduplicate(c *circuit.Circuit, g *graph.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	start := time.Now()

	var choices []*Choice
	if opt.MultiModule {
		choices = SelectModules(c)
	} else if ch := SelectModule(c); ch != nil {
		choices = []*Choice{ch}
	}

	// Verify each choice's instances; drop what cannot be proven
	// isomorphic (we never miscompile a near-duplicate).
	var plans []*plan
	for _, ch := range choices {
		verified := VerifyIsomorphism(c, ch)
		if len(verified) < 2 {
			continue
		}
		pl := &plan{choice: ch}
		for _, vi := range verified {
			pl.sets = append(pl.sets, ch.NodeSets[vi])
		}
		plans = append(plans, pl)
	}
	if len(plans) == 0 {
		// Nothing to deduplicate: fall back to the baseline partitioner.
		res, err := partition.Partition(g, opt.Partition)
		if err != nil {
			return nil, err
		}
		r := newUnsharedResult(res)
		r.Stats.TotalNodes = c.NumNodes()
		r.Timing.Total = time.Since(start)
		r.Timing.Remainder = r.Timing.Total
		return r, nil
	}

	stats := Stats{
		TotalNodes:   c.NumNodes(),
		Module:       plans[0].choice.Module,
		Instances:    len(plans[0].sets),
		InstanceSize: len(plans[0].sets[0]),
	}
	for _, pl := range plans {
		stats.Modules = append(stats.Modules, pl.choice.Module)
		stats.IdealReduction += float64((len(pl.sets)-1)*len(pl.sets[0])) / float64(c.NumNodes())
	}

	// owner[v] identifies the (plan, instance) that owns node v, packed as
	// planIdx<<16 | instIdx, or -1. Plans claim disjoint node sets.
	owner := make([]int32, c.NumNodes())
	for i := range owner {
		owner[i] = -1
	}
	for pi, pl := range plans {
		for i, set := range pl.sets {
			tag := int32(pi)<<16 | int32(i)
			for _, v := range set {
				owner[v] = tag
			}
		}
	}

	// Fig. 7a: partition the first verified instance of each plan as its
	// template.
	tStart := time.Now()
	for _, pl := range plans {
		sub, _ := graph.Induced(g, pl.sets[0])
		tRes, err := partition.Partition(sub, opt.Partition)
		if err != nil {
			return nil, fmt.Errorf("dedup: template partitioning (%s): %w", pl.choice.Module, err)
		}
		pl.tRes = tRes
	}
	timing := Timing{PartitionInstance: time.Since(tStart)}
	stats.TemplateParts = plans[0].tRes.NumParts

	// Fig. 7b: dissolve boundary template partitions. A template
	// partition is boundary if, in ANY instance, one of its corresponding
	// nodes has a scheduling edge crossing that instance's boundary.
	dStart := time.Now()
	for pi, pl := range plans {
		boundary := make([]bool, pl.tRes.NumParts)
		for i, set := range pl.sets {
			tag := int32(pi)<<16 | int32(i)
			for p, v := range set {
				tp := pl.tRes.Assign[p]
				if boundary[tp] {
					continue
				}
				cross := false
				for _, sc := range g.Succs(v) {
					if owner[sc] != tag {
						cross = true
						break
					}
				}
				if !cross {
					for _, pr := range g.Preds(v) {
						if owner[pr] != tag {
							cross = true
							break
						}
					}
				}
				if cross {
					boundary[tp] = true
				}
			}
		}
		pl.kept = make([]bool, pl.tRes.NumParts)
		for tp := range pl.kept {
			pl.kept[tp] = !boundary[tp]
			if pl.kept[tp] {
				pl.keptCount++
			} else if pi == 0 {
				stats.DissolvedBoundary++
			}
		}
	}
	timing.Dissolve = time.Since(dStart)

	// Fig. 7c: stamp kept template partitions onto every instance, then
	// iteratively dissolve template partitions involved in residual
	// cycles. Dissolution is template-wide so classes stay aligned. The
	// condensation built for the cycle check is reused by the remainder
	// partitioner below.
	sStart := time.Now()
	var seed, condAssign []int32
	var groupPlan, groupTpl []int32
	var groups int
	var cond *graph.Graph
	for round := 0; ; round++ {
		seed, groupPlan, groupTpl = stampSeed(c.NumNodes(), plans)
		groups = len(groupPlan)
		cond, condAssign = condense(g, seed, groups)
		cyc := cond.FindCycle()
		if cyc == nil {
			break
		}
		if round >= opt.MaxCycleRounds {
			return nil, fmt.Errorf("dedup: cycle persisted after %d dissolve rounds", round)
		}
		dissolved := false
		for _, grp := range cyc {
			if int(grp) >= groups {
				continue // a free node, not a stamped partition
			}
			pl := plans[groupPlan[grp]]
			tp := groupTpl[grp]
			if pl.kept[tp] {
				pl.kept[tp] = false
				pl.keptCount--
				if groupPlan[grp] == 0 {
					stats.DissolvedForCycles++
				}
				dissolved = true
			}
		}
		if !dissolved {
			// A cycle purely among free nodes would mean g itself is
			// cyclic, which SchedGraph guarantees against.
			return nil, fmt.Errorf("dedup: cycle without stamped partitions; input graph cyclic?")
		}
	}
	timing.Stamp = time.Since(sStart)
	stats.KeptParts = plans[0].keptCount

	totalKept := 0
	for _, pl := range plans {
		totalKept += pl.keptCount
	}
	if totalKept == 0 {
		// Everything dissolved: deduplication degenerates to the baseline
		// (paper Section 4.2's worst case).
		res, err := partition.Partition(g, opt.Partition)
		if err != nil {
			return nil, err
		}
		r := newUnsharedResult(res)
		r.Stats = stats
		r.Timing = timing
		r.Timing.Total = time.Since(start)
		return r, nil
	}

	// Fig. 7d: partition the remainder around the frozen stamped groups.
	// Work on the condensation (one supernode per stamped group, one node
	// per free node): internal edges of stamped partitions vanish, so the
	// remainder pass costs ~the free fraction of the design instead of
	// re-walking everything.
	rStart := time.Now()
	condSeed := make([]int32, cond.NumNodes())
	frozen := make(map[int32]bool, groups)
	for v := range condSeed {
		if v < groups {
			condSeed[v] = int32(v)
			frozen[int32(v)] = true
		} else {
			condSeed[v] = -1
		}
	}
	condRes, err := partition.PartitionSeeded(cond, condSeed, frozen, opt.Partition)
	if err != nil {
		return nil, fmt.Errorf("dedup: remainder partitioning: %w", err)
	}
	// Map condensation partitions back onto circuit nodes.
	final := make([]int32, c.NumNodes())
	weights := make([]int64, condRes.NumParts)
	for v := 0; v < c.NumNodes(); v++ {
		final[v] = condRes.Assign[condAssign[v]]
		weights[final[v]]++
	}
	res := &partition.Result{Assign: final, NumParts: condRes.NumParts, Weights: weights}
	timing.Remainder = time.Since(rStart)

	// Build classes and canonical member orders. Class IDs are dense and
	// globally unique across plans.
	r := newUnsharedResult(res)
	classBase := int32(0)
	for pi, pl := range plans {
		keptNodes := 0
		keptIndex := make([]int32, pl.tRes.NumParts)
		kc := int32(0)
		for tp, k := range pl.kept {
			if k {
				keptIndex[tp] = kc
				kc++
			} else {
				keptIndex[tp] = -1
			}
		}
		for p := range pl.tRes.Assign {
			if pl.kept[pl.tRes.Assign[p]] {
				keptNodes++
			}
		}
		if pi == 0 {
			stats.KeptNodes = keptNodes
		}
		stats.RealReduction += float64((len(pl.sets)-1)*keptNodes) / float64(c.NumNodes())

		// Canonical member order for stamped partitions: template
		// position ascending (sets iterate positions in order).
		classMembers := map[int32][]graph.NodeID{}
		for i, set := range pl.sets {
			for p, v := range set {
				tp := pl.tRes.Assign[p]
				if !pl.kept[tp] {
					continue
				}
				pid := res.Assign[v]
				classMembers[pid] = append(classMembers[pid], v)
				r.Class[pid] = classBase + keptIndex[tp]
				r.InstanceOf[pid] = int32(i)
			}
		}
		for pid, mem := range classMembers {
			r.Members[pid] = mem
		}
		classBase += kc
	}
	r.NumClasses = int(classBase)
	r.Stats = stats
	r.Timing = timing
	r.Timing.Total = time.Since(start)
	return r, nil
}

// plan carries the per-module state of the deduplication flow.
type plan struct {
	choice    *Choice
	sets      [][]graph.NodeID
	tRes      *partition.Result
	kept      []bool
	keptCount int
}

// BaselineResult wraps a plain partitioning as a Result with no shared
// classes, for the simulator variants that bypass deduplication.
func BaselineResult(res *partition.Result) *Result {
	return newUnsharedResult(res)
}

// newUnsharedResult wraps a plain partitioning with no shared classes.
func newUnsharedResult(res *partition.Result) *Result {
	r := &Result{
		Part:       res,
		Class:      make([]int32, res.NumParts),
		InstanceOf: make([]int32, res.NumParts),
		Members:    res.Members(),
	}
	for i := range r.Class {
		r.Class[i] = -1
		r.InstanceOf[i] = -1
	}
	return r
}

// WithoutSharing returns a copy of r with all code sharing removed (every
// partition unique), preserving the partition shapes — the paper's PO
// (Partitioning Only) variant.
func (r *Result) WithoutSharing() *Result {
	c := newUnsharedResult(r.Part)
	c.Members = r.Members
	c.Stats = r.Stats
	c.Timing = r.Timing
	return c
}

// stampSeed builds the seeded assignment: nodes of kept template
// partitions stamped per instance across all plans, everything else free
// (-1). Group numbering is dense; groupPlan/groupTpl decode a group ID
// back to its plan and template partition for cycle-driven dissolution.
func stampSeed(numNodes int, plans []*plan) (seed, groupPlan, groupTpl []int32) {
	seed = make([]int32, numNodes)
	for i := range seed {
		seed[i] = -1
	}
	gid := int32(0)
	for pi, pl := range plans {
		keptIdx := make([]int32, pl.tRes.NumParts)
		kc := int32(0)
		for tp, k := range pl.kept {
			if k {
				keptIdx[tp] = kc
				kc++
			} else {
				keptIdx[tp] = -1
			}
		}
		base := gid
		for i, set := range pl.sets {
			instBase := base + int32(i)*kc
			for p, v := range set {
				if j := keptIdx[pl.tRes.Assign[p]]; j >= 0 {
					seed[v] = instBase + j
				}
			}
		}
		// Record the decode tables: instance-major, kept-index-minor.
		for i := 0; i < len(pl.sets); i++ {
			for tp, k := range pl.kept {
				if k {
					groupPlan = append(groupPlan, int32(pi))
					groupTpl = append(groupTpl, int32(tp))
				}
			}
			_ = i
		}
		gid = base + int32(len(pl.sets))*kc
	}
	return seed, groupPlan, groupTpl
}

// condense builds the quotient of (stamped groups + free singletons):
// group IDs < groups are stamped partitions, free nodes get IDs >= groups.
// It returns the condensation and the node -> condensation-node mapping.
func condense(g *graph.Graph, seed []int32, groups int) (*graph.Graph, []int32) {
	assign := make([]int32, len(seed))
	next := int32(groups)
	for v, s := range seed {
		if s >= 0 {
			assign[v] = s
		} else {
			assign[v] = next
			next++
		}
	}
	return graph.Quotient(g, assign, int(next)), assign
}
