package faultinject

import (
	"context"
	"testing"
	"time"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	if r.Armed(WorkerCrash) {
		t.Error("nil registry armed")
	}
	for i := 0; i < 100; i++ {
		if r.Fire(WorkerCrash) {
			t.Fatal("nil registry fired")
		}
	}
	if r.Counts() != nil {
		t.Error("nil registry has counts")
	}
	r.Sleep(context.Background()) // must not block or panic
	if r.String() != "faultinject: disabled" {
		t.Errorf("String() = %q", r.String())
	}
}

func TestFireIsSeedDeterministic(t *testing.T) {
	mk := func(seed uint64) []bool {
		r := New(Config{Seed: seed, Rates: map[Point]float64{WorkerCrash: 0.3, StepStall: 0.5}})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, r.Fire(WorkerCrash), r.Fire(StepStall))
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at trial %d", i)
		}
	}
	c := mk(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical decision sequences")
	}
}

func TestFireRates(t *testing.T) {
	r := New(Config{Seed: 1, Rates: map[Point]float64{CompilePanic: 1, CompileStall: 0}})
	for i := 0; i < 50; i++ {
		if !r.Fire(CompilePanic) {
			t.Fatal("rate-1 point did not fire")
		}
		if r.Fire(CompileStall) {
			t.Fatal("rate-0 point fired")
		}
		if r.Fire(QueuePressure) {
			t.Fatal("unarmed point fired")
		}
	}
	// A mid-rate point should fire roughly at its rate.
	r2 := New(Config{Seed: 1, Rates: map[Point]float64{StepStall: 0.25}})
	fired := 0
	for i := 0; i < 2000; i++ {
		if r2.Fire(StepStall) {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Errorf("rate 0.25 fired %d/2000 trials", fired)
	}
}

func TestMaxPerPointBudget(t *testing.T) {
	r := New(Config{Seed: 3, Rates: map[Point]float64{WorkerCrash: 1}, MaxPerPoint: 2})
	fired := 0
	for i := 0; i < 100; i++ {
		if r.Fire(WorkerCrash) {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d times with budget 2", fired)
	}
	if r.Armed(WorkerCrash) {
		t.Error("exhausted point still armed")
	}
	if got := r.Counts()["worker.crash"]; got != 2 {
		t.Errorf("counts = %d, want 2", got)
	}
}

func TestParse(t *testing.T) {
	r, err := Parse("worker.crash=0.2, compile.stall=1", 9, 5*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Armed(WorkerCrash) || !r.Armed(CompileStall) || r.Armed(StepStall) {
		t.Error("parsed registry armed the wrong points")
	}
	if r.Stall() != 5*time.Millisecond {
		t.Errorf("stall = %v", r.Stall())
	}
	if r, err := Parse("", 1, 0, 0); r != nil || err != nil {
		t.Errorf("empty spec: %v, %v (want nil, nil)", r, err)
	}
	for _, bad := range []string{"nope=0.5", "worker.crash", "worker.crash=2", "worker.crash=x"} {
		if _, err := Parse(bad, 1, 0, 0); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestSleepRespectsContext(t *testing.T) {
	r := New(Config{Seed: 1, Stall: time.Minute, Rates: map[Point]float64{StepStall: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	r.Sleep(ctx)
	if time.Since(start) > time.Second {
		t.Error("Sleep ignored canceled context")
	}
}
