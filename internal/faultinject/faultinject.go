// Package faultinject is a deterministic, seeded fault-injection
// registry for the simulation farm. Production code declares named
// injection points (compile panic, compile stall, engine-step stall,
// worker crash, transient batch failure, queue pressure); a Registry
// built from a Config decides — reproducibly, from the seed and a
// per-point trial counter — which trials fire. A nil *Registry is the
// disabled state: every method is nil-receiver-safe and Fire reduces to
// a single pointer test, so the hooks are effectively free in
// production.
//
// Determinism contract: for a fixed seed, the n-th trial at a given
// point always makes the same fire/skip decision, regardless of which
// goroutine performs it. Under a concurrent farm the *assignment* of
// trials to jobs still depends on scheduling, but the fault budget and
// density are reproducible, which is what a seeded chaos test needs.
package faultinject

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one injection site threaded through the farm and engines.
type Point string

// The registered injection points. Each maps to a concrete failure mode
// with a documented recovery path (see DESIGN.md, "Failure model").
const (
	// CompilePanic panics inside the compile-cache's compile closure,
	// exercising the cache's panic-safety (waiters fail, entry dropped)
	// and the farm's transient-retry recovery.
	CompilePanic Point = "compile.panic"
	// CompileStall sleeps inside the compile closure, exercising
	// watchdog preemption of jobs stuck before their first cycle and
	// context-aware cache waiters.
	CompileStall Point = "compile.stall"
	// StepStall sleeps inside Engine/BatchEngine Step via the OnStep
	// hook, exercising stuck-simulation preemption mid-run.
	StepStall Point = "step.stall"
	// WorkerCrash panics at a cycle-chunk boundary of a running
	// simulation, exercising checkpoint-resume (the retry should restart
	// from the last checkpoint, not cycle 0).
	WorkerCrash Point = "worker.crash"
	// BatchTransient fails a coalesced batch attempt with a transient
	// error, exercising the per-lane scalar fallback path.
	BatchTransient Point = "batch.transient"
	// QueuePressure rejects a Submit as if the queue were full,
	// exercising load shedding (HTTP 429 + Retry-After) and client
	// retry behavior.
	QueuePressure Point = "queue.pressure"
)

// Points lists every registered injection point, in a stable order.
func Points() []Point {
	return []Point{CompilePanic, CompileStall, StepStall, WorkerCrash, BatchTransient, QueuePressure}
}

// Config describes an injection campaign.
type Config struct {
	// Seed drives every fire/skip decision; the same seed reproduces the
	// same per-point decision sequence.
	Seed uint64
	// Rates maps each armed point to its per-trial fire probability in
	// [0, 1]. Points absent from the map never fire.
	Rates map[Point]float64
	// Stall is how long injected stalls (compile.stall, step.stall)
	// sleep. Default 50ms.
	Stall time.Duration
	// MaxPerPoint caps how many times each point fires (0 = unlimited).
	// A finite budget lets a chaos test assert that every job still
	// reaches a successful terminal state once the budget is spent.
	MaxPerPoint int64
}

type pointState struct {
	// threshold is rate mapped onto the 53-bit output of the hash:
	// trial n fires iff hash53(seed, point, n) < threshold.
	threshold uint64
	trials    int64
	fired     int64
}

// Registry makes the fire/skip decisions. Safe for concurrent use; a
// nil *Registry is valid and never fires.
type Registry struct {
	seed  uint64
	stall time.Duration
	max   int64

	mu     sync.Mutex
	points map[Point]*pointState
}

// New builds a registry from cfg. Rates outside [0, 1] are clamped.
func New(cfg Config) *Registry {
	r := &Registry{
		seed:   cfg.Seed,
		stall:  cfg.Stall,
		max:    cfg.MaxPerPoint,
		points: map[Point]*pointState{},
	}
	if r.stall <= 0 {
		r.stall = 50 * time.Millisecond
	}
	for p, rate := range cfg.Rates {
		if rate <= 0 {
			continue
		}
		if rate > 1 {
			rate = 1
		}
		// rate 1 must always fire, so the threshold saturates above the
		// 53-bit hash range.
		r.points[p] = &pointState{threshold: uint64(rate * (1 << 53))}
	}
	return r
}

// Parse builds a registry from a comma-separated "point=rate" spec, the
// format the -fault-inject flag takes, e.g.
// "worker.crash=0.2,compile.stall=0.1". An empty spec returns nil (the
// disabled registry). Unknown point names are rejected.
func Parse(spec string, seed uint64, stall time.Duration, maxPerPoint int64) (*Registry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	known := map[Point]bool{}
	for _, p := range Points() {
		known[p] = true
	}
	rates := map[Point]float64{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad spec entry %q (want point=rate)", part)
		}
		p := Point(strings.TrimSpace(name))
		if !known[p] {
			return nil, fmt.Errorf("faultinject: unknown point %q (have %v)", name, Points())
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: bad rate %q for %s (want a probability in [0, 1])", val, name)
		}
		rates[p] = rate
	}
	return New(Config{Seed: seed, Rates: rates, Stall: stall, MaxPerPoint: maxPerPoint}), nil
}

// Armed reports whether the point can ever fire — the cheap guard for
// callers that would otherwise install a per-step hook.
func (r *Registry) Armed(p Point) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.points[p]
	return ok && (r.max <= 0 || st.fired < r.max)
}

// Fire records one trial at the point and reports whether the fault
// fires. Deterministic in (seed, point, trial index); nil registries
// never fire.
func (r *Registry) Fire(p Point) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.points[p]
	if !ok {
		return false
	}
	n := st.trials
	st.trials++
	if r.max > 0 && st.fired >= r.max {
		return false
	}
	if hash53(r.seed, p, n) >= st.threshold {
		return false
	}
	st.fired++
	return true
}

// Sleep blocks for the configured stall duration or until ctx is done —
// the body of the stall-type faults.
func (r *Registry) Sleep(ctx context.Context) {
	if r == nil {
		return
	}
	t := time.NewTimer(r.stall)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Stall returns the configured stall duration.
func (r *Registry) Stall() time.Duration {
	if r == nil {
		return 0
	}
	return r.stall
}

// Counts returns the fired count per point (points that fired at least
// one trial decision, fired or not), keyed by point name for metrics
// encoding. Nil registries return nil.
func (r *Registry) Counts() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.points))
	for p, st := range r.points {
		out[string(p)] = st.fired
	}
	return out
}

// String renders the armed points for logs, in stable order.
func (r *Registry) String() string {
	if r == nil {
		return "faultinject: disabled"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.points))
	for p := range r.points {
		names = append(names, string(p))
	}
	sort.Strings(names)
	return fmt.Sprintf("faultinject: seed %d, points %v", r.seed, names)
}

// hash53 maps (seed, point, trial) to a uniform 53-bit value via
// splitmix64 over an FNV-mixed key.
func hash53(seed uint64, p Point, trial int64) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	z := seed ^ h ^ uint64(trial)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) >> 11
}
