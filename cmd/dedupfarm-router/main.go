// Command dedupfarm-router fronts a fleet of dedupfarmd worker nodes:
// it registers nodes, probes their health over the nodes' own /livez
// and /readyz endpoints, and routes every submitted job to a worker by
// consistent-hashing the job's structural circuit hash × variant — so
// jobs for the same design land where that design's Program is already
// compiled (and lane batches actually fill), with bounded-load spill to
// the next ring node when a design runs hot.
//
// Usage:
//
//	dedupfarm-router -addr :8080
//	dedupfarmd -addr :8081 -join http://localhost:8080
//	dedupfarmd -addr :8082 -join http://localhost:8080
//
//	curl -X POST localhost:8080/jobs -d '{"design":"Rocket-2C","scale":0.25,"cycles":2000}'
//	curl localhost:8080/jobs/fj-1
//	curl localhost:8080/nodes
//	curl localhost:8080/statusz
//	curl localhost:8080/metrics
//	curl localhost:8080/jobs/fj-1/trace > trace.json   # open in Perfetto
//
// Logs are structured (log/slog); -log-format json switches to JSON
// lines. -pprof-addr serves net/http/pprof on a separate listener.
//
// Failure semantics: while a node is alive the router continuously
// pulls its newest job checkpoints and compile artifacts. When a node
// misses -dead-after consecutive probes it is declared dead, taken off
// the ring, and its unfinished jobs are re-submitted to their next ring
// successor with the saved checkpoint attached — work resumes mid-run
// instead of restarting, and the new owner warms its compile cache from
// the router's replicated artifact store instead of recompiling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dedupsim/internal/cluster"
	"dedupsim/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the placement ring (0 = default 64)")
	heartbeat := flag.Duration("heartbeat", 0, "node probe period (0 = default 1s)")
	deadAfter := flag.Int("dead-after", 0, "consecutive missed probes before a node is dead and its jobs migrate (0 = default 3)")
	loadFactor := flag.Float64("load-factor", 0, "bounded-load spill threshold factor (0 = default 1.25)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe HTTP timeout (0 = default 2s)")
	maxJobs := flag.Int("max-jobs", 0, "non-terminal fleet jobs admitted before shedding with 429 (0 = default 4096)")
	logFormat := flag.String("log-format", "text", "log output format: text (key=value lines) or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6061; empty = off)")
	noObs := flag.Bool("no-obs", false, "disable latency histograms and per-job lifecycle traces")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupfarm-router:", err)
		os.Exit(1)
	}
	logger = logger.With("node_id", "router")

	if *pprofAddr != "" {
		ps, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			logger.Error("pprof listener failed", "err", err)
			os.Exit(1)
		}
		defer ps.Close()
		logger.Info("pprof serving", "addr", ps.Addr)
	}

	r := cluster.NewRouter(cluster.RouterConfig{
		VirtualNodes:   *vnodes,
		HeartbeatEvery: *heartbeat,
		DeadAfter:      *deadAfter,
		LoadFactor:     *loadFactor,
		ProbeTimeout:   *probeTimeout,
		MaxJobs:        *maxJobs,
		DisableObs:     *noObs,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})

	srv := &http.Server{Addr: *addr, Handler: cluster.Handler(r)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("listening", "addr", *addr)
	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			exit = 1
		}
	case <-ctx.Done():
		stop()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(sctx)
		scancel()
	}
	r.Close()
	fmt.Println("dedupfarm-router: final status")
	r.WriteStatus(os.Stdout)
	os.Exit(exit)
}
