// Command dedupfarm-router fronts a fleet of dedupfarmd worker nodes:
// it registers nodes, probes their health over the nodes' own /livez
// and /readyz endpoints, and routes every submitted job to a worker by
// consistent-hashing the job's structural circuit hash × variant — so
// jobs for the same design land where that design's Program is already
// compiled (and lane batches actually fill), with bounded-load spill to
// the next ring node when a design runs hot.
//
// Usage:
//
//	dedupfarm-router -addr :8080
//	dedupfarmd -addr :8081 -join http://localhost:8080
//	dedupfarmd -addr :8082 -join http://localhost:8080
//
//	curl -X POST localhost:8080/jobs -d '{"design":"Rocket-2C","scale":0.25,"cycles":2000}'
//	curl localhost:8080/jobs/fj-1
//	curl localhost:8080/nodes
//	curl localhost:8080/statusz
//	curl localhost:8080/metrics
//	curl localhost:8080/jobs/fj-1/trace > trace.json   # open in Perfetto
//
// Logs are structured (log/slog); -log-format json switches to JSON
// lines. -pprof-addr serves net/http/pprof on a separate listener.
//
// Failure semantics: while a node is alive the router continuously
// pulls its newest job checkpoints and compile artifacts. When a node
// misses -dead-after consecutive probes it is declared dead, taken off
// the ring, and its unfinished jobs are re-submitted to their next ring
// successor with the saved checkpoint attached — work resumes mid-run
// instead of restarting, and the new owner warms its compile cache from
// the router's replicated artifact store instead of recompiling.
//
// With -data-dir the router itself is durable: node registrations and
// every placement are journaled, replicated checkpoints and artifacts
// are persisted, and a restarted router replays the journal, re-adopts
// still-live nodes, and migrates the jobs of any node that died while
// it was down. With -router-id and one or more -peer flags, two or
// more routers front the same node set: each pulls the others'
// placement deltas so any router can serve any job, and orphan
// migration is owned by the lowest live router ID so a dead node's
// jobs are never migrated twice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dedupsim/internal/cluster"
	"dedupsim/internal/durable"
	"dedupsim/internal/obs"
	"dedupsim/internal/tenant"
)

// peerList collects repeatable -peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	if v == "" {
		return errors.New("empty peer URL")
	}
	*p = append(*p, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the placement ring (0 = default 64)")
	heartbeat := flag.Duration("heartbeat", 0, "node probe period (0 = default 1s)")
	deadAfter := flag.Int("dead-after", 0, "consecutive missed probes before a node is dead and its jobs migrate (0 = default 3)")
	loadFactor := flag.Float64("load-factor", 0, "bounded-load spill threshold factor (0 = default 1.25)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe HTTP timeout (0 = default 2s)")
	maxJobs := flag.Int("max-jobs", 0, "non-terminal fleet jobs admitted before shedding with 429 (0 = default 4096)")
	logFormat := flag.String("log-format", "text", "log output format: text (key=value lines) or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6061; empty = off)")
	noObs := flag.Bool("no-obs", false, "disable latency histograms and per-job lifecycle traces")
	dataDir := flag.String("data-dir", "", "durable data directory: journal node registrations and placements, persist replicated checkpoints and artifacts, and recover all of it on restart (empty = in-memory only)")
	fsync := flag.String("fsync", "", "placement journal fsync policy with -data-dir: always, interval, none (default interval)")
	fsyncInterval := flag.Duration("fsync-interval", 0, "group-commit period for -fsync interval (0 = default 100ms)")
	routerID := flag.String("router-id", "", "this router's ID in a multi-router deployment; prefixes fleet job IDs and feeds migration ownership (empty = single router)")
	tenantCfg := flag.String("tenant-config", "", "per-tenant QoS config file (JSON) enforced at the fleet front door; reloaded live on SIGHUP (empty = every tenant unlimited)")
	var peers peerList
	flag.Var(&peers, "peer", "peer router base URL (repeatable) for HA placement sync")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupfarm-router:", err)
		os.Exit(1)
	}
	logger = logger.With("node_id", "router")

	if *pprofAddr != "" {
		ps, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			logger.Error("pprof listener failed", "err", err)
			os.Exit(1)
		}
		defer ps.Close()
		logger.Info("pprof serving", "addr", ps.Addr)
	}

	policy, err := durable.ParsePolicy(*fsync)
	if err != nil {
		logger.Error("bad -fsync", "err", err)
		os.Exit(1)
	}
	tenants, err := openTenants(*tenantCfg, logger)
	if err != nil {
		logger.Error("bad -tenant-config", "path", *tenantCfg, "err", err)
		os.Exit(1)
	}
	r, err := cluster.OpenRouter(cluster.RouterConfig{
		VirtualNodes:   *vnodes,
		HeartbeatEvery: *heartbeat,
		DeadAfter:      *deadAfter,
		LoadFactor:     *loadFactor,
		ProbeTimeout:   *probeTimeout,
		MaxJobs:        *maxJobs,
		DisableObs:     *noObs,
		DataDir:        *dataDir,
		Fsync:          policy,
		FsyncInterval:  *fsyncInterval,
		RouterID:       *routerID,
		Peers:          peers,
		Tenants:        tenants,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		logger.Error("router open failed", "err", err)
		os.Exit(1)
	}
	if rec := r.RecoveryStats(); rec != nil {
		logger.Info("router recovered",
			"placements_replayed", rec.PlacementsReplayed,
			"jobs_recovered", rec.JobsRecovered,
			"nodes_readopted", rec.NodesReadopted,
			"nodes_lost_while_down", rec.NodesLostWhileDown,
			"artifacts_reloaded", rec.ArtifactsReloaded,
			"journal_bytes_dropped", rec.JournalBytesDropped,
			"recovery_millis", rec.RecoveryMillis)
	}

	srv := &http.Server{Addr: *addr, Handler: cluster.Handler(r)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("listening", "addr", *addr)
	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			exit = 1
		}
	case <-ctx.Done():
		stop()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(sctx)
		scancel()
	}
	r.Close()
	fmt.Println("dedupfarm-router: final status")
	r.WriteStatus(os.Stdout)
	os.Exit(exit)
}

// openTenants loads the fleet QoS registry from -tenant-config and arms
// SIGHUP live reload; a failed reload keeps the previous limits.
func openTenants(path string, logger *slog.Logger) (*tenant.Registry, error) {
	if path == "" {
		return tenant.NewRegistry(tenant.Config{}), nil
	}
	cfg, err := tenant.LoadFile(path)
	if err != nil {
		return nil, err
	}
	reg := tenant.NewRegistry(cfg)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			cfg, err := tenant.LoadFile(path)
			if err != nil {
				logger.Error("tenant config reload failed; keeping previous limits", "path", path, "err", err)
				continue
			}
			reg.SetConfig(cfg)
			logger.Info("tenant config reloaded", "path", path)
		}
	}()
	return reg, nil
}
