// Command dedupfarm-router fronts a fleet of dedupfarmd worker nodes:
// it registers nodes, probes their health over the nodes' own /livez
// and /readyz endpoints, and routes every submitted job to a worker by
// consistent-hashing the job's structural circuit hash × variant — so
// jobs for the same design land where that design's Program is already
// compiled (and lane batches actually fill), with bounded-load spill to
// the next ring node when a design runs hot.
//
// Usage:
//
//	dedupfarm-router -addr :8080
//	dedupfarmd -addr :8081 -join http://localhost:8080
//	dedupfarmd -addr :8082 -join http://localhost:8080
//
//	curl -X POST localhost:8080/jobs -d '{"design":"Rocket-2C","scale":0.25,"cycles":2000}'
//	curl localhost:8080/jobs/fj-1
//	curl localhost:8080/nodes
//	curl localhost:8080/statusz
//
// Failure semantics: while a node is alive the router continuously
// pulls its newest job checkpoints and compile artifacts. When a node
// misses -dead-after consecutive probes it is declared dead, taken off
// the ring, and its unfinished jobs are re-submitted to their next ring
// successor with the saved checkpoint attached — work resumes mid-run
// instead of restarting, and the new owner warms its compile cache from
// the router's replicated artifact store instead of recompiling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dedupsim/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the placement ring (0 = default 64)")
	heartbeat := flag.Duration("heartbeat", 0, "node probe period (0 = default 1s)")
	deadAfter := flag.Int("dead-after", 0, "consecutive missed probes before a node is dead and its jobs migrate (0 = default 3)")
	loadFactor := flag.Float64("load-factor", 0, "bounded-load spill threshold factor (0 = default 1.25)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe HTTP timeout (0 = default 2s)")
	maxJobs := flag.Int("max-jobs", 0, "non-terminal fleet jobs admitted before shedding with 429 (0 = default 4096)")
	flag.Parse()

	r := cluster.NewRouter(cluster.RouterConfig{
		VirtualNodes:   *vnodes,
		HeartbeatEvery: *heartbeat,
		DeadAfter:      *deadAfter,
		LoadFactor:     *loadFactor,
		ProbeTimeout:   *probeTimeout,
		MaxJobs:        *maxJobs,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})

	srv := &http.Server{Addr: *addr, Handler: cluster.Handler(r)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("dedupfarm-router listening on %s\n", *addr)
	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "dedupfarm-router:", err)
			exit = 1
		}
	case <-ctx.Done():
		stop()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(sctx)
		scancel()
	}
	r.Close()
	fmt.Println("dedupfarm-router: final status")
	r.WriteStatus(os.Stdout)
	os.Exit(exit)
}
