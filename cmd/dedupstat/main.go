// Command dedupstat analyzes a design's deduplication potential without
// running any simulation: module replication inventory, the selected
// module and its benefit, the dissolve/kept breakdown, and optionally a
// Graphviz DOT rendering of the partitioned design.
//
// Usage:
//
//	dedupstat -design SmallBoom-4C
//	dedupstat -firrtl my.fir -multi
//	dedupstat -design Rocket-2C -scale 0.1 -dot rocket2.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"dedupsim/internal/circuit"
	"dedupsim/internal/codegen"
	"dedupsim/internal/dedup"
	"dedupsim/internal/firrtl"
	"dedupsim/internal/gen"
	"dedupsim/internal/graph"
	"dedupsim/internal/sched"
)

func main() {
	design := flag.String("design", "", "generated design name, e.g. SmallBoom-4C")
	firrtlPath := flag.String("firrtl", "", "path to a FIRRTL-dialect source file")
	scale := flag.Float64("scale", 1.0, "generator scale in (0, 1]")
	multi := flag.Bool("multi", false, "use multi-module deduplication (Fig. 6b extension)")
	dotPath := flag.String("dot", "", "write a DOT rendering of the partitioned scheduling graph")
	flag.Parse()

	c, err := load(*design, *firrtlPath, *scale)
	if err != nil {
		fail(err)
	}
	fmt.Printf("design: %s\n\n", c)

	// Module replication inventory.
	type modInfo struct {
		name      string
		instances int
		size      int
	}
	byInst := c.NodesByDeepInstance()
	subtrees := c.InstanceSubtrees()
	counts := map[string][]int32{}
	for i := 1; i < len(c.Instances); i++ {
		counts[c.Instances[i].Module] = append(counts[c.Instances[i].Module], int32(i))
	}
	var mods []modInfo
	for name, roots := range counts {
		size := 0
		for _, inst := range subtrees[roots[0]] {
			size += len(byInst[inst])
		}
		mods = append(mods, modInfo{name, len(roots), size})
	}
	sort.Slice(mods, func(i, j int) bool {
		bi, bj := mods[i].instances*mods[i].size, mods[j].instances*mods[j].size
		if bi != bj {
			return bi > bj
		}
		return mods[i].name < mods[j].name
	})
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Module\tInstances\tNodes/instance\tBenefit\tEligible")
	for _, m := range mods {
		eligible := "no (single instance)"
		if m.instances >= 2 {
			eligible = "yes"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\n", m.name, m.instances, m.size, m.instances*m.size, eligible)
	}
	tw.Flush()

	g := c.SchedGraph()
	r, err := dedup.Deduplicate(c, g, dedup.Options{MultiModule: *multi})
	if err != nil {
		fail(err)
	}
	st := r.Stats
	fmt.Printf("\ndeduplication (%s):\n", mode(*multi))
	if st.Module == "" {
		fmt.Println("  nothing to deduplicate")
	} else {
		fmt.Printf("  modules:            %s\n", strings.Join(st.Modules, ", "))
		fmt.Printf("  primary:            %s x%d (%d nodes each)\n", st.Module, st.Instances, st.InstanceSize)
		fmt.Printf("  ideal reduction:    %.2f%%\n", 100*st.IdealReduction)
		fmt.Printf("  real reduction:     %.2f%%\n", 100*st.RealReduction)
		fmt.Printf("  template parts:     %d (kept %d, dissolved %d boundary + %d cycle repair)\n",
			st.TemplateParts, st.KeptParts, st.DissolvedBoundary, st.DissolvedForCycles)
	}
	fmt.Printf("  final partitions:   %d (%d shared classes)\n", r.Part.NumParts, r.NumClasses)

	// Compile and report the interpreter-lowering stats: superinstruction
	// fusion and 1-bit cross-partition signal packing.
	s, err := sched.LocalityAware(r.Part.Quotient(g), r.Class)
	if err != nil {
		fail(err)
	}
	p, err := codegen.Compile(c, r, s, codegen.Options{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\ncodegen:\n")
	fmt.Printf("  instructions:       %d -> %d after fusion (%.1f%% of dispatched instrs fused away)\n",
		p.Fusion.InstrsBefore, p.Fusion.InstrsAfter, 100*p.Fusion.Frac())
	if len(p.Fusion.FusedByKind) > 0 {
		kinds := make([]string, 0, len(p.Fusion.FusedByKind))
		for k := range p.Fusion.FusedByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("    %-16s %d\n", k+":", p.Fusion.FusedByKind[k])
		}
	}
	fmt.Printf("  1-bit packing:      %d signals in %d words (state %d slots -> %d words)\n",
		p.PackedSignals, p.PackedWords, p.NumSlots, p.StateWords())

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		err = g.WriteDOT(f, c.Name,
			func(v graph.NodeID) string {
				if n := c.Names[v]; n != "" {
					return n
				}
				return c.Ops[v].String()
			},
			func(v graph.NodeID) int32 { return r.Part.Assign[v] })
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %s (render with: dot -Tsvg %s -o out.svg)\n", *dotPath, *dotPath)
	}
}

func mode(multi bool) string {
	if multi {
		return "multi-module"
	}
	return "single module, paper default"
}

func load(design, path string, scale float64) (*circuit.Circuit, error) {
	switch {
	case design != "" && path != "":
		return nil, fmt.Errorf("use either -design or -firrtl, not both")
	case path != "":
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return firrtl.Compile(string(src))
	case design != "":
		i := strings.LastIndexByte(design, '-')
		if i < 0 || !strings.HasSuffix(design, "C") {
			return nil, fmt.Errorf("design %q: want FAMILY-nC", design)
		}
		cores, err := strconv.Atoi(design[i+1 : len(design)-1])
		if err != nil || cores < 1 {
			return nil, fmt.Errorf("design %q: bad core count", design)
		}
		for _, f := range gen.Families {
			if string(f) == design[:i] {
				return gen.Build(gen.Config(f, cores, scale))
			}
		}
		return nil, fmt.Errorf("unknown family in %q (have %v)", design, gen.Families)
	default:
		return nil, fmt.Errorf("specify -design or -firrtl")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dedupstat:", err)
	os.Exit(1)
}
