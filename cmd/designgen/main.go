// Command designgen emits generated SoC designs as FIRRTL-dialect source,
// for inspection or as input to dedupsim -firrtl.
//
// Usage:
//
//	designgen -design SmallBoom-4C > smallboom4.fir
//	designgen -design Rocket-2C -scale 0.25 -o rocket2.fir
//	designgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dedupsim/internal/gen"
)

func main() {
	design := flag.String("design", "", "design name, e.g. Rocket-2C, MegaBoom-8C")
	scale := flag.Float64("scale", 1.0, "generator scale in (0, 1]")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list the Table 2 design grid with node counts")
	flag.Parse()

	if *list {
		fmt.Println("Design families:", gen.Families)
		for _, f := range gen.Families {
			for _, n := range []int{1, 2, 4, 6, 8} {
				c := gen.MustBuild(gen.Config(f, n, *scale))
				fmt.Printf("  %-14s %8d nodes %8d edges\n",
					fmt.Sprintf("%s-%dC", f, n), c.NumNodes(), c.NumEdges())
			}
		}
		return
	}
	if *design == "" {
		fmt.Fprintln(os.Stderr, "designgen: specify -design or -list")
		os.Exit(2)
	}
	i := strings.LastIndexByte(*design, '-')
	if i < 0 || !strings.HasSuffix(*design, "C") {
		fmt.Fprintf(os.Stderr, "designgen: design %q: want FAMILY-nC\n", *design)
		os.Exit(2)
	}
	cores, err := strconv.Atoi((*design)[i+1 : len(*design)-1])
	if err != nil || cores < 1 {
		fmt.Fprintf(os.Stderr, "designgen: bad core count in %q\n", *design)
		os.Exit(2)
	}
	var family gen.Family
	for _, f := range gen.Families {
		if string(f) == (*design)[:i] {
			family = f
		}
	}
	if family == "" {
		fmt.Fprintf(os.Stderr, "designgen: unknown family in %q (have %v)\n", *design, gen.Families)
		os.Exit(2)
	}

	src := gen.GenerateFIRRTL(gen.Config(family, cores, *scale))
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "designgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(src))
}
