// Command dedupfarmd serves the simulation farm over HTTP: submit
// simulation jobs, poll their status, fetch stats and waveforms, and
// inspect the content-addressed compile cache that lets identical designs
// share one compiled Program across the whole farm.
//
// Usage:
//
//	dedupfarmd -addr :8080 -workers 8
//
//	curl -X POST localhost:8080/jobs -d '{"design":"Rocket-2C","scale":0.25,"cycles":2000}'
//	curl localhost:8080/jobs/job-1
//	curl localhost:8080/stats
//	curl localhost:8080/statusz
//	curl localhost:8080/cache
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dedupsim/internal/farm"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job limit (0 = default 1024)")
	maxCycles := flag.Int("max-cycles", 0, "per-job cycle budget cap (0 = default 1e6)")
	timeout := flag.Duration("timeout", 0, "default per-job wall-clock timeout (0 = 2m)")
	retain := flag.Int("retain-jobs", 0, "terminal jobs kept queryable before pruning (0 = default 1024, negative = unlimited)")
	maxLanes := flag.Int("max-lanes", 0, "coalesce same-design queued jobs into lane batches up to this width (0 or 1 = off, max 64)")
	flag.Parse()

	f := farm.New(farm.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxCycles:      *maxCycles,
		DefaultTimeout: *timeout,
		RetainJobs:     *retain,
		MaxLanes:       *maxLanes,
	})

	srv := &http.Server{
		Addr:    *addr,
		Handler: farm.Handler(f),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	fmt.Printf("dedupfarmd listening on %s\n", *addr)
	err := srv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dedupfarmd:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Println("dedupfarmd: final stats")
	f.WriteStats(os.Stdout)
}
