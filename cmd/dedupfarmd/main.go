// Command dedupfarmd serves the simulation farm over HTTP: submit
// simulation jobs, poll their status, fetch stats and waveforms, and
// inspect the content-addressed compile cache that lets identical designs
// share one compiled Program across the whole farm.
//
// Usage:
//
//	dedupfarmd -addr :8080 -workers 8
//
//	curl -X POST localhost:8080/jobs -d '{"design":"Rocket-2C","scale":0.25,"cycles":2000}'
//	curl localhost:8080/jobs/job-1
//	curl localhost:8080/stats
//	curl localhost:8080/statusz
//	curl localhost:8080/cache
//	curl localhost:8080/metrics
//	curl localhost:8080/jobs/job-1/trace > trace.json   # open in Perfetto
//
// Logs are structured (log/slog), tagged with this node's identity;
// -log-format json switches from key=value lines to JSON for shippers.
// -pprof-addr serves net/http/pprof on a separate listener (off by
// default — profiling endpoints never share the job-traffic port).
//
// On SIGINT/SIGTERM the daemon drains gracefully: admission closes
// (/readyz flips to 503, new submissions are refused), queued and
// running jobs finish within -drain-timeout, then the server exits. It
// exits non-zero only if the drain deadline expired with jobs still
// outstanding (those are canceled) or the server failed.
//
// With -data-dir the daemon is durable: job lifecycle is journaled,
// checkpoints and compile-cache metadata persist, and a restart — even
// after SIGKILL — replays the journal, re-admits unfinished jobs
// (resuming from their newest valid checkpoint), and recompiles known
// designs warm before taking traffic. -fsync trades journal safety
// against write amplification (always / interval / none).
//
// For chaos testing, -fault-inject arms deterministic fault injection,
// e.g. -fault-inject 'worker.crash=0.01,compile.stall=0.1' (see
// internal/faultinject for the points).
//
// As a fleet member (see cmd/dedupfarm-router):
//
//	dedupfarmd -addr :8081 -join http://router:8080
//
// -join registers this node with the router (retrying until it answers)
// under -node-id (default hostname:port) at -advertise-addr (default
// derived from -addr), and arms the fetch-by-hash artifact hook so a
// cold cache warms from the fleet instead of recompiling. A duplicate
// -node-id is rejected by the router at registration with a clear error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dedupsim/internal/cluster"
	"dedupsim/internal/farm"
	"dedupsim/internal/faultinject"
	"dedupsim/internal/obs"
	"dedupsim/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job limit; past it submissions get 429 (0 = default 1024)")
	maxCycles := flag.Int("max-cycles", 0, "per-job cycle budget cap (0 = default 1e6)")
	timeout := flag.Duration("timeout", 0, "default per-job wall-clock timeout (0 = 2m)")
	retain := flag.Int("retain-jobs", 0, "terminal jobs kept queryable before pruning (0 = default 1024, negative = unlimited)")
	maxLanes := flag.Int("max-lanes", 0, "coalesce same-design queued jobs into lane batches up to this width (0 or 1 = off, max 64)")
	ckptEvery := flag.Int("checkpoint-every", 4096, "checkpoint running simulations every N cycles so retries resume instead of restarting (0 = off)")
	retries := flag.Int("retries", 0, "max retries per transiently failed job (0 = default 1, negative = off)")
	backoff := flag.Duration("retry-backoff", 100*time.Millisecond, "base retry backoff, doubled per attempt with jitter (0 = immediate)")
	stuck := flag.Duration("stuck-timeout", 0, "preempt and retry jobs that report no progress for this long (0 = watchdog off)")
	dataDir := flag.String("data-dir", "", "durable data directory: journal job lifecycle, persist checkpoints and compile-cache metadata, and recover all of it on restart (empty = in-memory only)")
	fsync := flag.String("fsync", "", "journal fsync policy with -data-dir: always, interval, none (default interval)")
	fsyncInterval := flag.Duration("fsync-interval", 0, "group-commit period for -fsync interval (0 = default 100ms)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before canceling them")
	faultSpec := flag.String("fault-inject", "", "arm fault injection: 'point=rate,...' over "+faultPoints())
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection decision seed")
	faultStall := flag.Duration("fault-stall", 0, "duration of injected stalls (0 = default 50ms)")
	faultBudget := flag.Int64("fault-budget", 0, "max fires per injection point (0 = unlimited)")
	join := flag.String("join", "", "fleet router base URL to register with (e.g. http://router:8080); empty = standalone")
	nodeID := flag.String("node-id", "", "fleet identity for this node (default hostname:port from -addr); must be unique per fleet")
	advertise := flag.String("advertise-addr", "", "base URL peers and the router reach this node at (default derived from -addr and the hostname)")
	logFormat := flag.String("log-format", "text", "log output format: text (key=value lines) or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
	noObs := flag.Bool("no-obs", false, "disable latency histograms and per-job lifecycle traces")
	tenantCfg := flag.String("tenant-config", "", "per-tenant QoS config file (JSON: default limits plus a tenants map of weight/rate_per_sec/burst/priority/parks_per_min); reloaded live on SIGHUP (empty = every tenant unlimited, weight 1)")
	flag.Parse()

	if *nodeID == "" {
		*nodeID = cluster.DefaultNodeID(*addr)
	}
	if *advertise == "" {
		*advertise = cluster.DefaultAdvertiseAddr(*addr)
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupfarmd:", err)
		os.Exit(1)
	}
	logger = logger.With("node_id", *nodeID)

	faults, err := faultinject.Parse(*faultSpec, *faultSeed, *faultStall, *faultBudget)
	if err != nil {
		logger.Error("bad -fault-inject", "err", err)
		os.Exit(1)
	}
	if faults != nil {
		logger.Warn("fault injection armed", "spec", faults.String())
	}

	tenants, err := openTenants(*tenantCfg, logger)
	if err != nil {
		logger.Error("bad -tenant-config", "path", *tenantCfg, "err", err)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		ps, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			logger.Error("pprof listener failed", "err", err)
			os.Exit(1)
		}
		defer ps.Close()
		logger.Info("pprof serving", "addr", ps.Addr)
	}

	// Fleet mode: cold compiles consult the router's replicated artifact
	// store before compiling locally.
	var fetchArtifact func(ctx context.Context, hash, variant string) ([]byte, error)
	if *join != "" {
		fetchArtifact = cluster.RouterArtifactFetcher(nil, *join)
	}

	// Open (not New) so a broken data dir — unwritable path, journal from
	// an incompatible version — fails fast at startup with a clear error
	// instead of surfacing mid-run.
	f, err := farm.Open(farm.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxCycles:       *maxCycles,
		DefaultTimeout:  *timeout,
		RetainJobs:      *retain,
		MaxLanes:        *maxLanes,
		CheckpointEvery: *ckptEvery,
		MaxRetries:      *retries,
		RetryBackoff:    *backoff,
		StuckTimeout:    *stuck,
		Faults:          faults,
		FetchArtifact:   fetchArtifact,
		DataDir:         *dataDir,
		Fsync:           *fsync,
		FsyncInterval:   *fsyncInterval,
		DisableObs:      *noObs,
		Tenants:         tenants,
	})
	if err != nil {
		logger.Error("farm startup failed", "err", err)
		os.Exit(1)
	}
	if rec := f.RecoveryStats(); rec != nil {
		logger.Info("recovered durable state",
			"data_dir", *dataDir,
			"journal_records", rec.JournalRecordsReplayed,
			"jobs_readmitted", rec.JobsRecovered,
			"checkpoints_loaded", rec.CheckpointsLoaded,
			"checkpoints_corrupt", rec.CheckpointsCorruptDropped,
			"cache_entries_warmed", rec.CacheEntriesWarmed,
			"recovery_ms", rec.RecoveryMillis)
		if rec.JournalBytesDropped > 0 {
			logger.Warn("journal tail truncated", "torn_bytes", rec.JournalBytesDropped)
		}
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: farm.Handler(f),
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		// Register after the listener is up so the router's first probe
		// finds a live /livez. Registration retries until the router
		// answers; a duplicate -node-id is a permanent, fatal error.
		jctx, jcancel := context.WithTimeout(ctx, 2*time.Minute)
		err := cluster.JoinRouter(jctx, nil, *join, *nodeID, *advertise)
		jcancel()
		if err != nil {
			logger.Error("fleet join failed", "router", *join, "err", err)
			f.Close()
			os.Exit(1)
		}
		logger.Info("joined fleet", "router", *join, "advertise", *advertise)
	}

	logger.Info("listening", "addr", *addr)
	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			exit = 1
		}
	case <-ctx.Done():
		// Let a second signal kill the process the default way while we
		// drain.
		stop()
		logger.Info("signal received; draining", "drain_timeout", *drainTimeout)
		// The server keeps answering status polls during the drain;
		// Submit refuses with 503 and /readyz reports unready so load
		// balancers stop routing here.
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := f.Drain(dctx); err != nil {
			logger.Error("drain incomplete; canceling remaining jobs", "err", err)
			exit = 1
		}
		dcancel()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(sctx)
		scancel()
	}
	f.Close()
	fmt.Println("dedupfarmd: final stats")
	f.WriteStats(os.Stdout)
	os.Exit(exit)
}

// openTenants loads the QoS registry from -tenant-config and arms the
// SIGHUP live-reload loop: a reload that fails to parse keeps the
// previous limits (a bad config push must not strip quotas), and
// existing tenants keep their counters and fair-share clock positions
// across reloads.
func openTenants(path string, logger *slog.Logger) (*tenant.Registry, error) {
	if path == "" {
		return tenant.NewRegistry(tenant.Config{}), nil
	}
	cfg, err := tenant.LoadFile(path)
	if err != nil {
		return nil, err
	}
	reg := tenant.NewRegistry(cfg)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			cfg, err := tenant.LoadFile(path)
			if err != nil {
				logger.Error("tenant config reload failed; keeping previous limits", "path", path, "err", err)
				continue
			}
			reg.SetConfig(cfg)
			logger.Info("tenant config reloaded", "path", path)
		}
	}()
	return reg, nil
}

func faultPoints() string {
	s := ""
	for i, p := range faultinject.Points() {
		if i > 0 {
			s += ", "
		}
		s += string(p)
	}
	return s
}
