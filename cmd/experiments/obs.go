package main

import (
	"fmt"
	"time"

	"dedupsim/internal/farm"
)

// The observability experiment measures what the tracing + histogram
// layer costs on the hot path. The same job mix runs through two
// otherwise-identical in-memory farms — one with observability enabled
// (the default), one opened with DisableObs — and the report compares
// their aggregate simulation throughput. Trials alternate between the
// two modes and each mode keeps its best trial, so a background hiccup
// hurts one trial, not one mode.
//
// The layer is designed to be invisible at this granularity: histogram
// observations are two atomic adds on job completion, and trace events
// are appended at phase boundaries (per attempt, not per cycle), so the
// inner simulation loop runs identical code in both modes.

// obsMode is one mode's best-trial measurement.
type obsMode struct {
	WallMs         float64   `json:"wall_ms"`
	SimWallMs      float64   `json:"sim_wall_ms"`
	AggregateSimHz float64   `json:"aggregate_sim_hz"`
	TrialHz        []float64 `json:"trial_hz"`
	JobsDone       int64     `json:"jobs_done"`
	Cycles         int64     `json:"simulated_cycles"`
}

// obsResult is the full report written to -obs-out.
type obsResult struct {
	Jobs       int     `json:"jobs"`
	Designs    int     `json:"designs"`
	CyclesEach int     `json:"cycles_per_job"`
	Trials     int     `json:"trials_per_mode"`
	Enabled    obsMode `json:"obs_enabled"`
	Disabled   obsMode `json:"obs_disabled"`
	// OverheadPct is (disabled - enabled) / disabled aggregate sim Hz, in
	// percent; negative values mean the difference drowned in run noise.
	OverheadPct float64 `json:"overhead_pct"`
}

func obsSpecs(cycles int) []farm.JobSpec {
	rocket := farm.DesignSpec{Design: "Rocket-2C", Scale: 0.1}
	boom := farm.DesignSpec{Design: "SmallBoom-2C", Scale: 0.1}
	var specs []farm.JobSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, farm.JobSpec{DesignSpec: rocket, Workload: "A", Cycles: cycles, Seed: uint64(i + 1)})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, farm.JobSpec{DesignSpec: boom, Workload: "B", Cycles: cycles, Seed: uint64(i + 11)})
	}
	return specs
}

// obsTrial runs the job mix through one fresh farm and returns its
// stats snapshot plus the wall time.
func obsTrial(disable bool, specs []farm.JobSpec) (farm.Stats, time.Duration, error) {
	f, err := farm.Open(farm.Config{
		Workers:         2,
		CheckpointEvery: 256,
		DefaultTimeout:  5 * time.Minute,
		DisableObs:      disable,
	})
	if err != nil {
		return farm.Stats{}, 0, err
	}
	defer f.Close()
	start := time.Now()
	if _, err := runAll(f, specs); err != nil {
		return farm.Stats{}, 0, err
	}
	wall := time.Since(start)
	return f.Stats(), wall, nil
}

func runObsExperiment(cycles, trials int) (*obsResult, error) {
	specs := obsSpecs(cycles)
	res := &obsResult{Jobs: len(specs), Designs: 2, CyclesEach: cycles, Trials: trials}

	record := func(m *obsMode, st farm.Stats, wall time.Duration) {
		m.TrialHz = append(m.TrialHz, st.AggregateSimHz)
		if st.AggregateSimHz > m.AggregateSimHz {
			m.WallMs = float64(wall) / float64(time.Millisecond)
			m.SimWallMs = st.SimWallMs
			m.AggregateSimHz = st.AggregateSimHz
			m.JobsDone = st.JobsCompleted
			m.Cycles = st.SimulatedCycles
		}
	}
	// Warm-up pass (discarded): page in the code and let the runtime
	// settle before either mode is measured.
	if _, _, err := obsTrial(false, specs); err != nil {
		return nil, err
	}
	for i := 0; i < trials; i++ {
		for _, disable := range []bool{false, true} {
			st, wall, err := obsTrial(disable, specs)
			if err != nil {
				return nil, err
			}
			if disable {
				record(&res.Disabled, st, wall)
			} else {
				record(&res.Enabled, st, wall)
			}
		}
	}
	if res.Disabled.AggregateSimHz > 0 {
		res.OverheadPct = 100 * (res.Disabled.AggregateSimHz - res.Enabled.AggregateSimHz) /
			res.Disabled.AggregateSimHz
	}
	return res, nil
}

func renderObs(res *obsResult) string {
	return fmt.Sprintf(`Observability overhead (%d jobs, %d designs, %d cycles each, best of %d trials per mode)

  mode      wall_ms  sim_wall_ms  cycles      agg_sim_hz
  enabled   %7.0f  %11.0f  %10d  %10.0f
  disabled  %7.0f  %11.0f  %10d  %10.0f

tracing + histograms cost %.2f%% of aggregate sim Hz (negative = noise).`,
		res.Jobs, res.Designs, res.CyclesEach, res.Trials,
		res.Enabled.WallMs, res.Enabled.SimWallMs, res.Enabled.Cycles, res.Enabled.AggregateSimHz,
		res.Disabled.WallMs, res.Disabled.SimWallMs, res.Disabled.Cycles, res.Disabled.AggregateSimHz,
		res.OverheadPct)
}
