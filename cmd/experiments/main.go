// Command experiments regenerates the paper's evaluation tables and
// figures as text reports.
//
// Usage:
//
//	experiments -all                 # every table and figure (slow)
//	experiments -table 2 -table 4    # specific tables
//	experiments -fig 8 -fig 9        # specific figures
//	experiments -quick -all          # reduced design grid for a fast pass
//	experiments -scale 0.5 -cycles 200 -fig 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dedupsim/internal/harness"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var figs, tables intList
	all := flag.Bool("all", false, "run every table and figure")
	quick := flag.Bool("quick", false, "use the reduced design grid")
	scale := flag.Float64("scale", 0, "override design generator scale (0 = config default)")
	cycles := flag.Int("cycles", 0, "override simulated cycles per measurement")
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable: 1 2 8 9 10 11 12)")
	flag.Var(&tables, "table", "table number to regenerate (repeatable: 2 3 4)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation studies")
	batch := flag.Bool("batch", false, "run the lane-batched throughput experiment")
	batchOut := flag.String("batch-out", "", "also write the -batch results as JSON to this file (e.g. BENCH_batch.json)")
	recovery := flag.Bool("recovery", false, "run the durable-farm recovery experiment (cold start vs warm restart vs crash resume)")
	recoveryOut := flag.String("recovery-out", "", "also write the -recovery results as JSON to this file (e.g. BENCH_recovery.json)")
	obs := flag.Bool("obs", false, "run the observability-overhead experiment (tracing + histograms on vs off)")
	obsOut := flag.String("obs-out", "", "also write the -obs results as JSON to this file (e.g. BENCH_obs.json)")
	obsTrials := flag.Int("obs-trials", 10, "trials per mode for the -obs experiment")
	flag.Parse()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
		cfg.CacheScale = 0
	}
	if *cycles > 0 {
		cfg.Cycles = *cycles
	}

	type job struct {
		name string
		run  func() (*harness.Report, error)
	}
	jobs := map[string]job{
		"fig1":   {"Figure 1", cfg.Fig1},
		"fig2":   {"Figure 2", cfg.Fig2},
		"fig8":   {"Figure 8", cfg.Fig8},
		"fig9":   {"Figure 9", cfg.Fig9},
		"fig10":  {"Figure 10", cfg.Fig10},
		"fig11":  {"Figure 11", cfg.Fig11},
		"fig12":  {"Figure 12", cfg.Fig12},
		"table2": {"Table 2", cfg.Table2},
		"table3": {"Table 3", cfg.Table3},
		"table4": {"Table 4", cfg.Table4},
	}
	order := []string{"table2", "fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12", "table3", "table4"}

	var selected []string
	if *all {
		selected = order
	}
	for _, f := range figs {
		selected = append(selected, fmt.Sprintf("fig%d", f))
	}
	for _, t := range tables {
		selected = append(selected, fmt.Sprintf("table%d", t))
	}
	if len(selected) == 0 && !*ablations && !*batch && !*recovery && !*obs {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -fig N, -table N, -batch, -recovery, -obs, or -ablations")
		flag.Usage()
		os.Exit(2)
	}

	for _, key := range selected {
		j, ok := jobs[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", key)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s generated in %s)\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}

	if *batch {
		start := time.Now()
		res, err := cfg.BatchThroughputData()
		if err != nil {
			fmt.Fprintf(os.Stderr, "batch throughput failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(harness.RenderBatchThroughput(res).String())
		fmt.Printf("(batch throughput generated in %s)\n\n", time.Since(start).Round(time.Millisecond))
		if *batchOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "batch throughput: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*batchOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "batch throughput: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *batchOut)
		}
	}

	if *recovery {
		start := time.Now()
		cyclesPerJob := 5000
		if *quick {
			cyclesPerJob = 1000
		}
		if *cycles > 0 {
			cyclesPerJob = *cycles
		}
		res, err := runRecoveryExperiment(cyclesPerJob)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recovery experiment failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(renderRecovery(res))
		fmt.Printf("(recovery experiment generated in %s)\n\n", time.Since(start).Round(time.Millisecond))
		if *recoveryOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "recovery experiment: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*recoveryOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "recovery experiment: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *recoveryOut)
		}
	}

	if *obs {
		start := time.Now()
		cyclesPerJob := 5000
		if *quick {
			cyclesPerJob = 1000
		}
		if *cycles > 0 {
			cyclesPerJob = *cycles
		}
		res, err := runObsExperiment(cyclesPerJob, *obsTrials)
		if err != nil {
			fmt.Fprintf(os.Stderr, "observability experiment failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(renderObs(res))
		fmt.Printf("(observability experiment generated in %s)\n\n", time.Since(start).Round(time.Millisecond))
		if *obsOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "observability experiment: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*obsOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "observability experiment: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *obsOut)
		}
	}

	if *ablations {
		start := time.Now()
		reps, err := cfg.Ablations()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablations failed: %v\n", err)
			os.Exit(1)
		}
		for _, rep := range reps {
			fmt.Println(rep.String())
			fmt.Println()
		}
		fmt.Printf("(ablations generated in %s)\n", time.Since(start).Round(time.Millisecond))
	}
}
