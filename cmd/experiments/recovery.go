package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dedupsim/internal/farm"
)

// The recovery experiment quantifies what the durable tier buys a
// restarted farm, in three phases over one data directory:
//
//  1. cold    — fresh directory: every design compiles on the job path.
//  2. warm    — clean restart: the persistent cache tier recompiles the
//     design zoo before admission opens, so jobs hit warm entries and
//     pay no inline compiles.
//  3. resume  — crash restart: the farm is killed mid-load
//     (SIGKILL-equivalent) once checkpoints exist; the reopened farm
//     re-admits the unfinished jobs and resumes them from checkpoints
//     instead of cycle 0.
//
// The JSON report (-recovery-out) records wall time, compile time, and
// the recovery counters per phase.

// recoveryPhase is one phase's measurements.
type recoveryPhase struct {
	WallMs         float64 `json:"wall_ms"`
	CompileMs      float64 `json:"compile_ms"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheWarmHits  int64   `json:"cache_warm_hits,omitempty"`
	RecoveryMs     float64 `json:"recovery_ms,omitempty"`
	EntriesWarmed  int64   `json:"cache_entries_warmed,omitempty"`
	JobsRecovered  int64   `json:"jobs_recovered,omitempty"`
	CkptsLoaded    int64   `json:"checkpoints_loaded,omitempty"`
	CyclesSaved    int64   `json:"cycles_saved_by_resume,omitempty"`
	JobsDone       int64   `json:"jobs_done"`
	SimulatedCycle int64   `json:"simulated_cycles"`
}

// recoveryResult is the full report written to -recovery-out.
type recoveryResult struct {
	Jobs    int           `json:"jobs"`
	Designs int           `json:"designs"`
	Cycles  int           `json:"cycles_per_job"`
	Cold    recoveryPhase `json:"cold"`
	Warm    recoveryPhase `json:"warm"`
	Resume  recoveryPhase `json:"resume"`
}

func recoverySpecs(cycles int) []farm.JobSpec {
	rocket := farm.DesignSpec{Design: "Rocket-2C", Scale: 0.1}
	boom := farm.DesignSpec{Design: "SmallBoom-2C", Scale: 0.1}
	var specs []farm.JobSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, farm.JobSpec{DesignSpec: rocket, Workload: "A", Cycles: cycles, Seed: uint64(i + 1)})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, farm.JobSpec{DesignSpec: boom, Workload: "B", Cycles: cycles, Seed: uint64(i + 11)})
	}
	return specs
}

func recoveryConfig(dir string) farm.Config {
	return farm.Config{
		Workers:         2,
		CheckpointEvery: 256,
		DataDir:         dir,
		Fsync:           "always",
		DefaultTimeout:  5 * time.Minute,
	}
}

// runAll submits specs and waits for every job, returning the IDs.
func runAll(f *farm.Farm, specs []farm.JobSpec) ([]string, error) {
	ids := make([]string, len(specs))
	for i, s := range specs {
		j, err := f.Submit(s)
		if err != nil {
			return nil, err
		}
		ids[i] = j.ID
	}
	for _, id := range ids {
		j, _ := f.Job(id)
		<-j.Done()
		if v := j.View(); v.Status != farm.StatusDone {
			return nil, fmt.Errorf("job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
	return ids, nil
}

func phaseStats(f *farm.Farm, wall time.Duration) recoveryPhase {
	st := f.Stats()
	p := recoveryPhase{
		WallMs:         float64(wall) / float64(time.Millisecond),
		CompileMs:      st.CompileMsSpent,
		CacheMisses:    st.Cache.Misses,
		CacheWarmHits:  st.Cache.WarmHits,
		JobsDone:       st.JobsCompleted,
		SimulatedCycle: st.SimulatedCycles,
		CyclesSaved:    st.CyclesSavedByResume,
	}
	if rec := f.RecoveryStats(); rec != nil {
		p.RecoveryMs = rec.RecoveryMillis
		p.EntriesWarmed = rec.CacheEntriesWarmed
		p.JobsRecovered = rec.JobsRecovered
		p.CkptsLoaded = rec.CheckpointsLoaded
	}
	return p
}

func runRecoveryExperiment(cycles int) (*recoveryResult, error) {
	dir, err := os.MkdirTemp("", "dedupsim-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	specs := recoverySpecs(cycles)
	res := &recoveryResult{Jobs: len(specs), Designs: 2, Cycles: cycles}
	cfg := recoveryConfig(dir)

	// Phase 1: cold start — fresh directory, compiles on the job path.
	f, err := farm.Open(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := runAll(f, specs); err != nil {
		f.Close()
		return nil, err
	}
	res.Cold = phaseStats(f, time.Since(start))
	f.Close()

	// Phase 2: warm restart — clean reopen, the persistent tier
	// recompiles the design zoo before the jobs arrive.
	f, err = farm.Open(cfg)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := runAll(f, specs); err != nil {
		f.Close()
		return nil, err
	}
	res.Warm = phaseStats(f, time.Since(start))
	f.Close()

	// Phase 3: crash resume — kill mid-load once a checkpoint exists,
	// reopen, and let the recovered jobs run out from their checkpoints.
	f, err = farm.Open(cfg)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(specs))
	for i, s := range specs {
		j, serr := f.Submit(s)
		if serr != nil {
			f.Close()
			return nil, serr
		}
		ids[i] = j.ID
	}
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		found := false
		for _, id := range ids {
			if _, serr := os.Stat(filepath.Join(dir, "checkpoints", id+".ckpt")); serr == nil {
				found = true
				break
			}
		}
		if found {
			break
		}
		time.Sleep(time.Millisecond)
	}
	f.Kill()

	f, err = farm.Open(cfg)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for _, id := range ids {
		j, ok := f.Job(id)
		if !ok {
			continue // finished and journaled before the kill
		}
		<-j.Done()
		if v := j.View(); v.Status != farm.StatusDone {
			f.Close()
			return nil, fmt.Errorf("recovered job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
	res.Resume = phaseStats(f, time.Since(start))
	f.Close()
	return res, nil
}

func renderRecovery(res *recoveryResult) string {
	return fmt.Sprintf(`Durable-farm recovery (%d jobs, %d designs, %d cycles each)

  phase    wall_ms  compile_ms  misses  warm_hits  recovered  ckpts  cycles_saved
  cold     %7.0f  %10.0f  %6d  %9d  %9d  %5d  %12d
  warm     %7.0f  %10.0f  %6d  %9d  %9d  %5d  %12d
  resume   %7.0f  %10.0f  %6d  %9d  %9d  %5d  %12d

warm restart pays its compiles at recovery (%.0f ms) instead of on the
job path; crash resume re-admits %d jobs and skips %d already-simulated
cycles.`,
		res.Jobs, res.Designs, res.Cycles,
		res.Cold.WallMs, res.Cold.CompileMs, res.Cold.CacheMisses, res.Cold.CacheWarmHits,
		res.Cold.JobsRecovered, res.Cold.CkptsLoaded, res.Cold.CyclesSaved,
		res.Warm.WallMs, res.Warm.CompileMs, res.Warm.CacheMisses, res.Warm.CacheWarmHits,
		res.Warm.JobsRecovered, res.Warm.CkptsLoaded, res.Warm.CyclesSaved,
		res.Resume.WallMs, res.Resume.CompileMs, res.Resume.CacheMisses, res.Resume.CacheWarmHits,
		res.Resume.JobsRecovered, res.Resume.CkptsLoaded, res.Resume.CyclesSaved,
		res.Warm.RecoveryMs, res.Resume.JobsRecovered, res.Resume.CyclesSaved)
}
