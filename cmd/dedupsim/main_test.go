package main

import (
	"strings"
	"testing"

	"dedupsim/internal/gen"
)

func TestParseDesign(t *testing.T) {
	f, cores, err := parseDesign("LargeBoom-6C")
	if err != nil || f != gen.LargeBoom || cores != 6 {
		t.Fatalf("parseDesign: %v %d %v", f, cores, err)
	}
	if _, _, err := parseDesign("Nope-2C"); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, _, err := parseDesign("Rocket-0C"); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, _, err := parseDesign("Rocket2C"); err == nil {
		t.Fatal("missing dash accepted")
	}
	if _, _, err := parseDesign("Rocket-2X"); err == nil {
		t.Fatal("missing C suffix accepted")
	}
}

func TestLoadDesignModes(t *testing.T) {
	if _, err := loadDesign("", "", 1.0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadDesign("Rocket-1C", "x.fir", 1.0); err == nil {
		t.Fatal("both sources accepted")
	}
	c, err := loadDesign("Rocket-1C", "", 0.1)
	if err != nil || c.NumNodes() == 0 {
		t.Fatalf("generated design failed: %v", err)
	}
}

func TestVariantList(t *testing.T) {
	l := variantList()
	for _, want := range []string{"ESSENT", "Dedup", "Verilator-NoDedup"} {
		if !strings.Contains(l, want) {
			t.Fatalf("variant list %q missing %s", l, want)
		}
	}
}
