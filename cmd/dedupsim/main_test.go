package main

import (
	"strings"
	"testing"
)

func TestLoadDesignModes(t *testing.T) {
	if _, err := loadDesign("", "", 1.0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadDesign("Rocket-1C", "x.fir", 1.0); err == nil {
		t.Fatal("both sources accepted")
	}
	c, err := loadDesign("Rocket-1C", "", 0.1)
	if err != nil || c.NumNodes() == 0 {
		t.Fatalf("generated design failed: %v", err)
	}
}

func TestVariantList(t *testing.T) {
	l := variantList()
	for _, want := range []string{"ESSENT", "Dedup", "Verilator-NoDedup"} {
		if !strings.Contains(l, want) {
			t.Fatalf("variant list %q missing %s", l, want)
		}
	}
}
