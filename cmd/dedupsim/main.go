// Command dedupsim compiles one design under one simulator variant, runs
// it, and reports simulation statistics — the library's front door.
//
// Usage:
//
//	dedupsim -design LargeBoom-4C -variant Dedup -cycles 2000
//	dedupsim -firrtl mydesign.fir -variant ESSENT -workload B
//	dedupsim -design Rocket-2C -variant Dedup -verify   # against reference
//	dedupsim -design MegaBoom-8C -variant Dedup -model  # modeled counters
//	dedupsim -design Rocket-2C -json                    # machine-readable
//	dedupsim -design SmallBoom-4C -lanes 8              # 8 lane-batched sims
//
// With -json the human-readable report moves to stderr and stdout carries
// a single JSON document in the same encoding the farm API (dedupfarmd)
// serves, so scripts can consume either interchangeably.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dedupsim/internal/circuit"
	"dedupsim/internal/codegen"
	"dedupsim/internal/farm"
	"dedupsim/internal/firrtl"
	"dedupsim/internal/gen"
	"dedupsim/internal/harness"
	"dedupsim/internal/partition"
	"dedupsim/internal/perfmodel"
	"dedupsim/internal/sim"
	"dedupsim/internal/stimulus"
)

func main() {
	design := flag.String("design", "", "generated design name, e.g. Rocket-2C, LargeBoom-6C")
	firrtlPath := flag.String("firrtl", "", "path to a FIRRTL-dialect source file (alternative to -design)")
	variantName := flag.String("variant", "Dedup", "simulator variant: "+variantList())
	scale := flag.Float64("scale", 1.0, "generator scale in (0, 1]")
	cycles := flag.Int("cycles", 1000, "simulated cycles to run")
	workload := flag.String("workload", "A", "stimulus workload: A (low activity) or B (high activity)")
	lanes := flag.Int("lanes", 1, "run N independently-seeded simulations in one lane-batched engine (1..64)")
	verify := flag.Bool("verify", false, "co-simulate against the reference interpreter and compare outputs")
	model := flag.Bool("model", false, "also report modeled host performance counters")
	vcdPath := flag.String("vcd", "", "dump a waveform of all registers and I/O to this VCD file")
	stats := flag.Bool("stats", false, "report per-partition activity and the hottest partitions")
	cppPath := flag.String("emit-cpp", "", "write the compiled simulator as C++ source to this file")
	jsonOut := flag.Bool("json", false, "emit simulation stats as JSON on stdout (human report moves to stderr)")
	flag.Parse()

	// With -json, stdout is reserved for the JSON document.
	var out io.Writer = os.Stdout
	if *jsonOut {
		out = os.Stderr
	}

	// SIGINT/SIGTERM stop the simulation at the next cycle-chunk
	// boundary; the run then flushes whatever it has (VCD, stats, JSON)
	// and exits cleanly. A second signal kills the process the default
	// way (NotifyContext unregisters after the first).
	sigCtx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	c, err := loadDesign(*design, *firrtlPath, *scale)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(out, "design: %s\n", c)

	v := harness.Variant(*variantName)
	if v == harness.Commercial {
		fail(fmt.Errorf("the Commercial variant is event-driven and only exists in the performance model; use cmd/experiments"))
	}
	start := time.Now()
	cv, err := harness.CompileVariant(c, v, partition.Options{})
	if err != nil {
		fail(err)
	}
	compileTime := time.Since(start)
	prog := cv.Program
	fmt.Fprintf(out, "compiled %s in %s: %d partitions, %d kernels (%d shared classes), code %d B, tables %d B\n",
		v, compileTime.Round(time.Millisecond),
		prog.NumParts, len(prog.Kernels), sharedClasses(cv), prog.UniqueCodeBytes, prog.TableBytes)
	if cv.Dedup != nil && cv.Dedup.Stats.Module != "" {
		s := cv.Dedup.Stats
		fmt.Fprintf(out, "dedup: module %s x%d (%d nodes each), ideal %.2f%%, real %.2f%%\n",
			s.Module, s.Instances, s.InstanceSize, 100*s.IdealReduction, 100*s.RealReduction)
	}

	if *cppPath != "" {
		f, err := os.Create(*cppPath)
		if err != nil {
			fail(err)
		}
		if err := codegen.EmitCpp(f, prog, c.Name); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "emitted C++ simulator to %s\n", *cppPath)
	}

	var wl stimulus.Workload
	switch strings.ToUpper(*workload) {
	case "A":
		wl = stimulus.VVAddA()
	case "B":
		wl = stimulus.VVAddB()
	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}

	if *lanes > 1 {
		if *verify || *vcdPath != "" || *stats || *model {
			fail(fmt.Errorf("-lanes runs plain lockstep simulation; drop -verify/-vcd/-stats/-model or use -lanes 1"))
		}
		runLanes(sigCtx, out, c, cv, wl, *lanes, *cycles, compileTime, *jsonOut)
		return
	}

	e := sim.New(prog, cv.Activity)
	drive := wl.NewDrive()
	var ref *sim.Ref
	var refDrive func(stimulus.Driver, int)
	if *verify {
		ref, err = sim.NewRef(c)
		if err != nil {
			fail(err)
		}
		refDrive = wl.NewDrive()
	}
	var pstats *sim.PartitionStats
	if *stats {
		pstats = sim.NewPartitionStats(e)
	}
	var vcd *sim.VCDWriter
	var vcdFile *os.File
	var prober *sim.EngineProber
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fail(err)
		}
		vcdFile = f
		prober = sim.NewEngineProber(e, c)
		var probes []string
		for _, n := range sim.ProbeNames(c) {
			if _, _, ok := prober.Probe(n); ok {
				probes = append(probes, n)
			}
		}
		vcd, err = sim.NewVCDWriter(f, c, probes)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "dumping %d signals to %s\n", len(probes), *vcdPath)
	}
	interrupted := false
	start = time.Now()
	for cyc := 0; cyc < *cycles; cyc++ {
		if cyc%256 == 0 && sigCtx.Err() != nil {
			interrupted = true
			break
		}
		drive(e, cyc)
		e.Step()
		if vcd != nil {
			if err := vcd.Sample(prober, cyc); err != nil {
				fail(err)
			}
		}
		if pstats != nil {
			pstats.Observe()
		}
		if ref != nil {
			refDrive(ref, cyc)
			ref.Step()
			for _, o := range c.Outputs() {
				name := c.Names[o]
				got, _ := e.Output(name)
				want, _ := ref.Output(name)
				if got != want {
					fail(fmt.Errorf("verification FAILED at cycle %d: output %q engine=%#x reference=%#x",
						cyc, name, got, want))
				}
			}
		}
	}
	// Flush the waveform even on an interrupted run — a truncated-but-
	// well-formed VCD beats a corrupt one — and propagate write errors
	// (ENOSPC, closed pipe) as run failures rather than dropping them.
	if vcd != nil {
		if err := vcd.Close(); err != nil {
			fail(fmt.Errorf("vcd write: %w", err))
		}
		if err := vcdFile.Close(); err != nil {
			fail(fmt.Errorf("vcd close: %w", err))
		}
	}
	wall := time.Since(start)
	if interrupted {
		fmt.Fprintf(out, "interrupted after %d of %d cycles; flushing results\n", e.Cycles, *cycles)
	}
	fmt.Fprintf(out, "ran %d cycles in %s (%.0f simulated Hz in-process)\n",
		e.Cycles, wall.Round(time.Millisecond), float64(e.Cycles)/wall.Seconds())
	total := e.ActsExecuted + e.ActsSkipped
	fmt.Fprintf(out, "activations: %d executed, %d skipped (%.1f%% activity)\n",
		e.ActsExecuted, e.ActsSkipped, 100*float64(e.ActsExecuted)/float64(total))
	for _, o := range c.Outputs() {
		val, _ := e.Output(c.Names[o])
		fmt.Fprintf(out, "output %-12s = %#x\n", c.Names[o], val)
	}
	if ref != nil && !interrupted {
		fmt.Fprintln(out, "verification PASSED: all outputs matched the reference every cycle")
	}
	if pstats != nil {
		fmt.Fprintln(out)
		if err := pstats.WriteReport(out, prog, 10); err != nil {
			fail(err)
		}
	}

	if *model {
		m := perfmodel.Server().ScaleCaches(int(20 / *scale))
		drive2 := wl.NewDrive()
		tr := perfmodel.Record(prog, cv.Activity, min(*cycles, 500),
			func(e *sim.Engine, cyc int) { drive2(e, cyc) })
		ctr := perfmodel.RunSingle(tr, m, 0)
		fmt.Fprintf(out, "modeled on %s: %.0f sim Hz, IPC %.2f, L1I MPKI %.1f, branch MPKI %.1f, stall %.1f%%\n",
			m.Name, ctr.SimHz, ctr.IPC, ctr.L1IMPKI, ctr.BranchMPKI, ctr.StallPct)
	}

	if *jsonOut {
		st := farm.CollectStats(c, cv, e, compileTime, wall)
		st.Workload = wl.Name
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fail(err)
		}
	}
}

// runLanes simulates N decorrelated copies of the design in one
// lane-batched engine (lane l reseeds the workload via Workload.Lane) and
// reports aggregate throughput. With -json, stdout carries an array of
// per-lane SimStats in the farm encoding. SIGINT/SIGTERM (sigCtx) stops
// the lockstep loop at the next chunk boundary and reports what ran.
func runLanes(sigCtx context.Context, out io.Writer, c *circuit.Circuit, cv *harness.Compiled, wl stimulus.Workload,
	lanes, cycles int, compileTime time.Duration, jsonOut bool) {
	be, err := sim.NewBatch(cv.Program, cv.Activity, lanes)
	if err != nil {
		fail(err)
	}
	drives := make([]func(int), lanes)
	for l := range drives {
		drives[l] = wl.Lane(l).NewLaneDrive(be, l)
	}
	ran := 0
	start := time.Now()
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc%256 == 0 && sigCtx.Err() != nil {
			fmt.Fprintf(out, "interrupted after %d of %d cycles; flushing results\n", ran, cycles)
			break
		}
		for l := 0; l < lanes; l++ {
			drives[l](cyc)
		}
		be.Step()
		ran++
	}
	wall := time.Since(start)
	laneCycles := int64(lanes) * int64(ran)
	fmt.Fprintf(out, "ran %d lanes x %d cycles in %s (%.0f aggregate simulated Hz, %.0f Hz/lane)\n",
		lanes, ran, wall.Round(time.Millisecond),
		float64(laneCycles)/wall.Seconds(), float64(ran)/wall.Seconds())
	var executed, skipped int64
	for l := 0; l < lanes; l++ {
		executed += be.ActsExecuted[l]
		skipped += be.ActsSkipped[l]
	}
	fmt.Fprintf(out, "activations: %d executed, %d skipped (%.1f%% activity across lanes)\n",
		executed, skipped, 100*float64(executed)/float64(executed+skipped))
	for _, o := range c.Outputs() {
		name := c.Names[o]
		fmt.Fprintf(out, "output %-12s =", name)
		for l := 0; l < lanes; l++ {
			v, _ := be.Output(l, name)
			fmt.Fprintf(out, " %#x", v)
		}
		fmt.Fprintln(out)
	}
	if jsonOut {
		stats := make([]farm.SimStats, lanes)
		for l := range stats {
			compile := time.Duration(0)
			if l == 0 {
				compile = compileTime
			}
			stats[l] = farm.CollectLaneStats(c, cv, be, l, compile, wall)
			stats[l].Workload = wl.Name
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fail(err)
		}
	}
}

func loadDesign(design, path string, scale float64) (*circuit.Circuit, error) {
	switch {
	case design != "" && path != "":
		return nil, fmt.Errorf("use either -design or -firrtl, not both")
	case path != "":
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return firrtl.Compile(string(src))
	case design != "":
		f, cores, err := gen.ParseDesign(design)
		if err != nil {
			return nil, err
		}
		return gen.Build(gen.Config(f, cores, scale))
	default:
		return nil, fmt.Errorf("specify -design (e.g. Rocket-2C) or -firrtl FILE")
	}
}

func sharedClasses(cv *harness.Compiled) int {
	if cv.Dedup == nil {
		return 0
	}
	return cv.Dedup.NumClasses
}

func variantList() string {
	names := make([]string, len(harness.CompiledVariants))
	for i, v := range harness.CompiledVariants {
		names[i] = string(v)
	}
	return strings.Join(names, ", ")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dedupsim:", err)
	os.Exit(1)
}
