// Quickstart: parse a FIRRTL design with two identical cores, deduplicate
// it, and simulate — the minimal end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"dedupsim/internal/codegen"
	"dedupsim/internal/dedup"
	"dedupsim/internal/firrtl"
	"dedupsim/internal/sched"
	"dedupsim/internal/sim"
)

// A tiny SoC: two identical accumulator cores behind a shared input.
const src = `
circuit TwinSoC :
  module Core :
    input in : UInt<16>
    output out : UInt<16>
    reg inr : UInt<16>, reset 0
    inr <= in
    reg acc : UInt<16>, reset 0
    node sum = add(acc, inr)
    node capped = mux(lt(sum, UInt<16>(40000)), sum, UInt<16>(0))
    acc <= capped
    reg s1 : UInt<16>, reset 0
    reg s2 : UInt<16>, reset 0
    reg s3 : UInt<16>, reset 0
    s1 <= xor(acc, shl(inr, UInt<2>(1)))
    s2 <= add(s1, acc)
    s3 <= or(s2, s1)
    out <= add(acc, s3)

  module TwinSoC :
    input data : UInt<16>
    output sum0 : UInt<16>
    output sum1 : UInt<16>
    inst core0 of Core
    inst core1 of Core
    core0.in <= data
    core1.in <= not(data)
    sum0 <= core0.out
    sum1 <= core1.out
`

func main() {
	// 1. Frontend: parse + elaborate into a flat, hierarchy-annotated
	//    circuit graph.
	c, err := firrtl.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("elaborated:", c)

	// 2. Deduplicate: pick the replicated module, partition one instance,
	//    dissolve the boundary, stamp, and partition the remainder.
	g := c.SchedGraph()
	dr, err := dedup.Deduplicate(c, g, dedup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dedup: module %q x%d, ideal %.1f%%, real %.1f%%, %d shared classes\n",
		dr.Stats.Module, dr.Stats.Instances,
		100*dr.Stats.IdealReduction, 100*dr.Stats.RealReduction, dr.NumClasses)

	// 3. Schedule with temporal locality: same-class partitions run
	//    back-to-back.
	s, err := sched.LocalityAware(dr.Part.Quotient(g), dr.Class)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compile to kernels: one shared kernel per class, direct kernels
	//    elsewhere.
	prog, err := codegen.Compile(c, dr, s, codegen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d partitions -> %d kernels, %d B of unique code\n",
		prog.NumParts, len(prog.Kernels), prog.UniqueCodeBytes)

	// 5. Simulate with ESSENT-style activity skipping.
	e := sim.New(prog, true)
	for cyc := 0; cyc < 10; cyc++ {
		e.SetInput("data", uint64(cyc*3))
		e.Step()
		s0, _ := e.Output("sum0")
		s1, _ := e.Output("sum1")
		fmt.Printf("cycle %2d: sum0=%5d sum1=%5d\n", cyc, s0, s1)
	}
	fmt.Printf("activations executed=%d skipped=%d\n", e.ActsExecuted, e.ActsSkipped)
}
