// socdedup: deduplicate a multi-core SoC and compare what each simulator
// variant compiles to — partition counts, shared classes, code footprint,
// and the instruction-count dedup tax. This is the workload the paper's
// introduction motivates: replicated cores behind a shared uncore.
package main

import (
	"fmt"
	"log"

	"dedupsim/internal/dedup"
	"dedupsim/internal/gen"
	"dedupsim/internal/harness"
	"dedupsim/internal/partition"
	"dedupsim/internal/sim"
	"dedupsim/internal/stimulus"
)

func main() {
	// A 4-core SmallBoom at half scale: big enough to show real reuse.
	p := gen.Config(gen.SmallBoom, 4, 0.5)
	c := gen.MustBuild(p)
	fmt.Println("design:", c)

	// The dedup analysis alone (what Table 2 reports per design).
	g := c.SchedGraph()
	dr, err := dedup.Deduplicate(c, g, dedup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := dr.Stats
	fmt.Printf("\nchosen module: %s (%d instances x %d nodes)\n", st.Module, st.Instances, st.InstanceSize)
	fmt.Printf("ideal node reduction: %.2f%%   real: %.2f%%\n", 100*st.IdealReduction, 100*st.RealReduction)
	fmt.Printf("template partitions: %d, kept: %d (dissolved %d boundary, %d for cycles)\n",
		st.TemplateParts, st.KeptParts, st.DissolvedBoundary, st.DissolvedForCycles)

	// Compile every variant and race them on the same workload.
	fmt.Printf("\n%-18s %10s %9s %9s %12s %12s\n",
		"variant", "kernels", "classes", "code B", "instrs", "acts run")
	wl := stimulus.VVAddA()
	for _, v := range harness.CompiledVariants {
		cv, err := harness.CompileVariant(c, v, partition.Options{})
		if err != nil {
			log.Fatal(err)
		}
		e := sim.New(cv.Program, cv.Activity)
		drive := wl.NewDrive()
		for cyc := 0; cyc < 200; cyc++ {
			drive(e, cyc)
			e.Step()
		}
		classes := 0
		if cv.Dedup != nil {
			classes = cv.Dedup.NumClasses
		}
		fmt.Printf("%-18s %10d %9d %9d %12d %12d\n",
			v, len(cv.Program.Kernels), classes, cv.Program.UniqueCodeBytes,
			e.DynInstrs, e.ActsExecuted)
	}
	fmt.Println("\nNote how Dedup/NL shrink unique code (shared kernels) while")
	fmt.Println("executing more instructions (the indirection 'dedup tax').")
}
