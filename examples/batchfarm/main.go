// batchfarm: model a verification farm running many copies of the same
// simulation on one server, the scenario behind the paper's Figures 1 and
// 9 — throughput scales sub-linearly because the simulations fight over
// the shared last-level cache, and deduplication moves the knee.
package main

import (
	"fmt"
	"log"

	"dedupsim/internal/gen"
	"dedupsim/internal/harness"
	"dedupsim/internal/perfmodel"
	"dedupsim/internal/stimulus"
)

func main() {
	c := gen.MustBuild(gen.Config(gen.LargeBoom, 4, 0.5))
	fmt.Println("design:", c)

	// One socket of the paper's server, cache-scaled to the design size.
	m := perfmodel.Server().ScaleCaches(40)
	fmt.Printf("host: %s, %d cores, %s LLC\n\n", m.Name, m.Cores, mb(m.LLCSize))

	ks := []int{1, 2, 4, 8, 12, 16, 20, 24}
	fmt.Printf("%-12s", "K parallel:")
	for _, k := range ks {
		fmt.Printf("%8d", k)
	}
	fmt.Println()

	for _, v := range []harness.Variant{harness.Commercial, harness.Verilator, harness.ESSENT, harness.Dedup} {
		meas, err := harness.Measure(c, v, harness.MeasureOptions{
			Machine:  m,
			Workload: stimulus.VVAddA(),
			Cycles:   250,
			Sweep:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", v)
		base := perfmodel.Batch(meas.Curve, m, 1).Throughput
		for _, k := range ks {
			bp := perfmodel.Batch(meas.Curve, m, k)
			fmt.Printf("%7.2fx", bp.Throughput/base)
		}
		fmt.Printf("   (1 sim = %.0f Hz)\n", base)
	}

	fmt.Println("\nEach column is aggregate throughput relative to one simulation of")
	fmt.Println("the same variant. Watch the scaling knee: Dedup's smaller cache")
	fmt.Println("footprint keeps it closer to linear, which is the paper's headline.")
}

func mb(b int) string { return fmt.Sprintf("%.1f MB", float64(b)/(1<<20)) }
