// batchfarm: model a verification farm running many copies of the same
// simulation on one server, the scenario behind the paper's Figures 1 and
// 9 — throughput scales sub-linearly because the simulations fight over
// the shared last-level cache, and deduplication moves the knee.
//
// Part 1 reproduces the analytic batch model. Part 2 then runs the same
// scenario for real: an in-process simulation farm (internal/farm) gets
// the same design K times, compiles it once through the content-addressed
// cache, and reports measured wall-clock throughput next to the model.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"dedupsim/internal/farm"
	"dedupsim/internal/gen"
	"dedupsim/internal/harness"
	"dedupsim/internal/perfmodel"
	"dedupsim/internal/stimulus"
)

const (
	designName = "LargeBoom-4C"
	scale      = 0.5
	cycles     = 250
)

func main() {
	c := gen.MustBuild(gen.Config(gen.LargeBoom, 4, scale))
	fmt.Println("design:", c)

	// One socket of the paper's server, cache-scaled to the design size.
	m := perfmodel.Server().ScaleCaches(40)
	fmt.Printf("host: %s, %d cores, %s LLC\n\n", m.Name, m.Cores, mb(m.LLCSize))

	ks := []int{1, 2, 4, 8, 12, 16, 20, 24}
	fmt.Printf("%-12s", "K parallel:")
	for _, k := range ks {
		fmt.Printf("%8d", k)
	}
	fmt.Println()

	for _, v := range []harness.Variant{harness.Commercial, harness.Verilator, harness.ESSENT, harness.Dedup} {
		meas, err := harness.Measure(c, v, harness.MeasureOptions{
			Machine:  m,
			Workload: stimulus.VVAddA(),
			Cycles:   cycles,
			Sweep:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", v)
		base := perfmodel.Batch(meas.Curve, m, 1).Throughput
		for _, k := range ks {
			bp := perfmodel.Batch(meas.Curve, m, k)
			fmt.Printf("%7.2fx", bp.Throughput/base)
		}
		fmt.Printf("   (1 sim = %.0f Hz)\n", base)
	}

	fmt.Println("\nEach column is aggregate throughput relative to one simulation of")
	fmt.Println("the same variant. Watch the scaling knee: Dedup's smaller cache")
	fmt.Println("footprint keeps it closer to linear, which is the paper's headline.")

	// Part 2: the same scenario, measured. K identical jobs through a
	// real farm — one compile (content-addressed cache), K concurrent
	// engines sharing the read-only Program.
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("\n--- measured: in-process farm, %d workers ---\n", workers)

	f := farm.New(farm.Config{Workers: workers})
	defer f.Close()
	spec := farm.JobSpec{
		DesignSpec: farm.DesignSpec{Design: designName, Scale: scale},
		Variant:    string(harness.Dedup),
		Workload:   "A",
		Cycles:     cycles,
	}

	// Baseline: one job alone.
	soloStart := time.Now()
	submitAndWait(f, spec, 1)
	soloWall := time.Since(soloStart)
	soloHz := float64(cycles) / soloWall.Seconds()

	const k = 8
	batchStart := time.Now()
	submitAndWait(f, spec, k)
	batchWall := time.Since(batchStart)
	batchHz := float64(k*cycles) / batchWall.Seconds()

	st := f.Stats()
	fmt.Printf("1 job:  %d cycles in %v (%.0f sim Hz)\n", cycles, soloWall.Round(time.Millisecond), soloHz)
	fmt.Printf("%d jobs: %d cycles in %v (%.0f aggregate sim Hz, %.2fx the solo rate)\n",
		k, k*cycles, batchWall.Round(time.Millisecond), batchHz, batchHz/soloHz)
	fmt.Printf("compile cache: %d compile for %d jobs (%d hits), %.0f ms of recompilation avoided\n",
		st.Cache.Misses, st.JobsCompleted, st.Cache.Hits, st.Cache.CompileMsSaved)
	fmt.Println("\nThe analytic table models LLC contention on the paper's server; the")
	fmt.Println("measured run shows the farm mechanics on this host: one shared")
	fmt.Println("compile, K engines over one read-only Program.")
}

// submitAndWait pushes n copies of spec and blocks until all finish.
func submitAndWait(f *farm.Farm, spec farm.JobSpec, n int) {
	ids := make([]string, n)
	for i := range ids {
		j, err := f.Submit(spec)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = j.ID
	}
	for _, id := range ids {
		v, err := f.WaitJob(context.Background(), id)
		if err != nil {
			log.Fatal(err)
		}
		if v.Status != farm.StatusDone {
			log.Fatalf("%s: %s (%s)", id, v.Status, v.Error)
		}
	}
}

func mb(b int) string { return fmt.Sprintf("%.1f MB", float64(b)/(1<<20)) }
