// customdesign: build a circuit programmatically with the circuit.Builder
// API (no FIRRTL text), deduplicate it, and prove cycle-accurate
// equivalence between the deduplicated engine and the reference
// interpreter — the workflow for embedding the library in another tool.
package main

import (
	"fmt"
	"log"

	"dedupsim/internal/circuit"
	"dedupsim/internal/codegen"
	"dedupsim/internal/dedup"
	"dedupsim/internal/sched"
	"dedupsim/internal/sim"
)

// buildFilterBank constructs a bank of identical 3-tap moving-sum filters
// feeding a shared comparator — replication without any HDL source.
func buildFilterBank(banks int) *circuit.Circuit {
	b := circuit.NewBuilder("FilterBank")
	in := b.Input("sample", 16)
	thresh := b.Input("threshold", 16)

	var outs []circuit.NodeID
	for i := 0; i < banks; i++ {
		b.PushInstance(fmt.Sprintf("filter%d", i), "Filter")
		// Delay line.
		d0 := b.Reg("d0", 16, 0)
		d1 := b.Reg("d1", 16, 0)
		d2 := b.Reg("d2", 16, 0)
		b.SetRegNext(d0, in)
		b.SetRegNext(d1, d0)
		b.SetRegNext(d2, d1)
		// Moving sum; the filters are exact replicas (per-bank variation
		// lives outside the instance so deduplication can verify them as
		// structurally identical).
		s0 := b.Binary(circuit.OpAdd, d0, d1)
		sum := b.Binary(circuit.OpAdd, s0, d2)
		smooth := b.Binary(circuit.OpShr, sum, b.Const(2, 1))
		b.PopInstance()
		bias := b.Const(16, uint64(i))
		outs = append(outs, b.Binary(circuit.OpAdd, smooth, bias))
	}

	// Shared comparator tree: how many banks exceed the threshold?
	count := b.Const(8, 0)
	for _, o := range outs {
		hit := b.Binary(circuit.OpGeq, o, thresh)
		wide := b.Binary(circuit.OpOr, b.Const(8, 0), hit)
		count = b.Binary(circuit.OpAdd, count, wide)
	}
	b.Output("hits", count)
	return b.MustFinish()
}

func main() {
	const banks = 8
	c := buildFilterBank(banks)
	fmt.Println("built:", c)

	g := c.SchedGraph()
	dr, err := dedup.Deduplicate(c, g, dedup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dedup found %q x%d, real reduction %.1f%%\n",
		dr.Stats.Module, dr.Stats.Instances, 100*dr.Stats.RealReduction)

	s, err := sched.LocalityAware(dr.Part.Quotient(g), dr.Class)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := codegen.Compile(c, dr, s, codegen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	engine := sim.New(prog, true)
	ref, err := sim.NewRef(c)
	if err != nil {
		log.Fatal(err)
	}

	// Lockstep co-simulation on a sawtooth stimulus.
	mismatches := 0
	for cyc := 0; cyc < 64; cyc++ {
		sample := uint64((cyc * 37) % 1000)
		for _, d := range []interface {
			SetInput(string, uint64) error
		}{engine, ref} {
			d.SetInput("sample", sample)
			d.SetInput("threshold", 350)
		}
		engine.Step()
		ref.Step()
		got, _ := engine.Output("hits")
		want, _ := ref.Output("hits")
		if got != want {
			mismatches++
			fmt.Printf("cycle %d: MISMATCH engine=%d reference=%d\n", cyc, got, want)
		}
	}
	if mismatches == 0 {
		fmt.Println("co-simulation: 64 cycles, all outputs equivalent")
	}
	final, _ := engine.Output("hits")
	fmt.Printf("final hits=%d (of %d banks), activations executed=%d skipped=%d\n",
		final, banks, engine.ActsExecuted, engine.ActsSkipped)
}
